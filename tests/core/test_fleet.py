"""Fleet-scale wave fusion: schedule planning, slice tables, execution."""

import numpy as np
import pytest

from repro.core import (
    ExplanationPipeline,
    FleetExecutor,
    FleetSchedule,
    MaskPlan,
    MaskStackBudgetError,
    MultiInputScheduler,
    SliceTable,
    TpuBackend,
    make_tpu_chip,
)
from repro.fft import fft_circular_convolve2d
from repro.hw.cpu import CpuDevice


def small_backend(num_cores=4, precision="fp32"):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision=precision, mxu_rows=8, mxu_cols=8)
    )


def planted_pairs(count, shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel)))
    return pairs


class TestFleetSchedule:
    def test_equal_shape_pairs_fuse_into_one_wave(self):
        schedule = FleetSchedule.plan([(8, 8)] * 5, [4] * 5)
        assert schedule.num_waves == 1
        assert schedule.waves[0].pair_indices == (0, 1, 2, 3, 4)
        assert schedule.waves[0].num_rows == 5 * (4 + 1)

    def test_mixed_shapes_split_by_first_seen_order(self):
        shapes = [(8, 8), (4, 4), (8, 8), (4, 4)]
        schedule = FleetSchedule.plan(shapes, [2, 2, 2, 2])
        assert schedule.num_waves == 2
        assert schedule.waves[0].pair_indices == (0, 2)
        assert schedule.waves[0].plane_shape == (8, 8)
        assert schedule.waves[1].pair_indices == (1, 3)

    def test_budget_splits_waves(self):
        # Each pair: (2 masks + 1 residual) * 4*4 * 8 = 384 bytes.
        schedule = FleetSchedule.plan(
            [(4, 4)] * 4, [2] * 4, max_stack_bytes=800
        )
        assert schedule.num_waves == 2
        assert [w.pair_indices for w in schedule.waves] == [(0, 1), (2, 3)]
        assert all(w.stack_nbytes <= 800 for w in schedule.waves)

    def test_max_pairs_per_wave(self):
        schedule = FleetSchedule.plan(
            [(4, 4)] * 5, [1] * 5, max_pairs_per_wave=2
        )
        assert [w.pair_indices for w in schedule.waves] == [(0, 1), (2, 3), (4,)]

    def test_single_pair_over_budget_raises(self):
        with pytest.raises(MaskStackBudgetError, match="loop"):
            FleetSchedule.plan([(4, 4)], [100], max_stack_bytes=1000)

    def test_none_budget_never_splits(self):
        schedule = FleetSchedule.plan([(4, 4)] * 10, [1000] * 10, max_stack_bytes=None)
        assert schedule.num_waves == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetSchedule.plan([(4, 4)], [1, 2])
        with pytest.raises(ValueError):
            FleetSchedule.plan([(4, 4)], [1], max_pairs_per_wave=0)
        with pytest.raises(ValueError):
            FleetSchedule.plan([(4, 4)], [1], streaming=True, itemsize=0)

    def test_empty_fleet_plans_empty_schedule(self):
        """The service's idle drain path: nothing to plan is not an error."""
        schedule = FleetSchedule.plan([], [])
        assert schedule.num_waves == 0
        assert schedule.num_pairs == 0

    def test_streaming_chunk_budget_fuses_what_dense_budget_splits(self):
        """Chunk-adaptive planning (the ROADMAP follow-on): under
        streaming the budget bounds the chunk, which does not grow with
        the fused pairs, so a budget that dense semantics split into
        many waves fuses into one."""
        shapes = [(4, 4)] * 8
        counts = [2] * 8
        budget = 800  # two (2+1)-row pairs of 4x4 float64 per dense wave
        dense = FleetSchedule.plan(
            shapes, counts, max_stack_bytes=budget, streaming=True,
            dense_budget=True,
        )
        adaptive = FleetSchedule.plan(
            shapes, counts, max_stack_bytes=budget, streaming=True
        )
        assert dense.num_waves == 4
        assert adaptive.num_waves == 1
        assert adaptive.waves[0].pair_indices == tuple(range(8))

    def test_streamed_chunk_nbytes_formula_and_clamp(self):
        from repro.core import streamed_chunk_nbytes

        # Unclamped: chunk_rows * M * N * itemsize.
        assert streamed_chunk_nbytes((4, 4), chunk_rows=10) == 10 * 16 * 8
        # Quantized storage width shrinks the streamed footprint 8x.
        assert streamed_chunk_nbytes((4, 4), chunk_rows=10, itemsize=1) == 160
        # Clamped so the chunk fits the budget, never below one plane.
        assert streamed_chunk_nbytes(
            (4, 4), chunk_rows=10, max_stack_bytes=300
        ) == 2 * 16 * 8
        assert streamed_chunk_nbytes(
            (4, 4), chunk_rows=10, max_stack_bytes=10
        ) == 16 * 8
        with pytest.raises(ValueError):
            streamed_chunk_nbytes((4, 4), chunk_rows=0)

    def test_num_pairs(self):
        schedule = FleetSchedule.plan([(4, 4), (8, 8)], [1, 1])
        assert schedule.num_pairs == 2


class TestSliceTable:
    def test_rows_interleave_masks_and_residuals(self):
        plans = [MaskPlan.columns((4, 4)), MaskPlan.rows((4, 4))]
        table = SliceTable.for_plans(plans)
        assert len(table) == 4 + 1 + 4 + 1
        np.testing.assert_array_equal(table.mask_rows(0), [0, 1, 2, 3])
        assert table.residual_row(0) == 4
        np.testing.assert_array_equal(table.mask_rows(1), [5, 6, 7, 8])
        assert table.residual_row(1) == 9

    def test_none_plan_contributes_only_residual(self):
        table = SliceTable.for_plans([None, MaskPlan.columns((4, 4))])
        assert table.mask_rows(0).size == 0
        assert table.residual_row(0) == 0
        np.testing.assert_array_equal(table.mask_rows(1), [1, 2, 3, 4])

    def test_row_pair_indices_is_conv_kernel_map(self):
        table = SliceTable.for_plans([MaskPlan.columns((2, 2)), None])
        np.testing.assert_array_equal(table.row_pair_indices(), [0, 0, 0, 1])

    def test_labels_survive_fusion(self):
        table = SliceTable.for_plans([MaskPlan.blocks((4, 4), (2, 2))])
        mask_rows = table.for_pair(0)[:-1]
        assert [r.label for r in mask_rows] == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_missing_residual_raises(self):
        table = SliceTable.for_plans([MaskPlan.columns((2, 2))], include_residual=False)
        with pytest.raises(KeyError):
            table.residual_row(0)


class TestFleetExecutorEquivalence:
    @pytest.mark.parametrize("granularity,kwargs,shape", [
        ("blocks", {"block_shape": (4, 4)}, (8, 8)),
        ("columns", {}, (8, 8)),
        ("rows", {}, (8, 8)),
        ("elements", {}, (8, 8)),
    ])
    @pytest.mark.parametrize(
        "device_factory", [CpuDevice, small_backend], ids=["cpu", "tpu"]
    )
    def test_wave_bitwise_equals_pair(self, device_factory, granularity, kwargs, shape):
        pairs = planted_pairs(3, shape=shape)
        runs = {}
        for fusion in ("pair", "wave"):
            pipeline = ExplanationPipeline(
                device_factory(), granularity=granularity, eps=1e-8,
                fusion=fusion, **kwargs,
            )
            runs[fusion] = pipeline.run(pairs)
        for a, b in zip(runs["pair"].explanations, runs["wave"].explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.kernel, b.kernel)
            assert a.residual == b.residual

    def test_hundred_pair_fleet_one_dispatch_per_wave(self):
        """The acceptance scenario at test scale: a 100-pair fleet costs
        one dispatch and one batched-conv record per wave instead of one
        program (plus a residual round trip) per pair."""
        pairs = planted_pairs(100)
        runs = {}
        for fusion in ("pair", "wave"):
            pipeline = ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(4, 4),
                eps=1e-8, fusion=fusion,
            )
            runs[fusion] = pipeline.run(pairs)
        for a, b in zip(runs["pair"].explanations, runs["wave"].explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual
        wave_stats = runs["wave"].stats
        assert runs["wave"].num_programs == 1
        assert wave_stats.op_counts["dispatch"] == 1
        assert wave_stats.op_counts["conv2d_batch"] == 1
        assert "conv_round_trip" not in wave_stats.op_counts
        assert runs["pair"].stats.op_counts["dispatch"] == 100
        assert runs["pair"].stats.op_counts["conv_round_trip"] == 100
        assert runs["wave"].simulated_seconds < runs["pair"].simulated_seconds

    def test_mixed_shape_fleet_runs_wave_per_shape(self):
        pairs = planted_pairs(2, shape=(8, 8)) + planted_pairs(2, shape=(4, 4), seed=1)
        pipeline = ExplanationPipeline(
            small_backend(), granularity="columns", eps=1e-8
        )
        run = pipeline.run(pairs)
        assert run.num_programs == 2
        assert run.stats.op_counts["dispatch"] == 2
        # Results stay in input order and match per-pair execution.
        pair_run = ExplanationPipeline(
            small_backend(), granularity="columns", eps=1e-8, fusion="pair"
        ).run(pairs)
        for a, b in zip(pair_run.explanations, run.explanations):
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_budget_split_waves_still_bitwise_identical(self):
        pairs = planted_pairs(4)
        plan = MaskPlan.columns((8, 8))
        per_pair_bytes = (plan.num_masks + 1) * 8 * 8 * 8
        executor = FleetExecutor(
            CpuDevice(), granularity="columns",
            max_stack_bytes=2 * per_pair_bytes,
            dense_budget=True,  # historical dense-stack wave budgeting
        )
        fleet = executor.run(pairs)
        assert fleet.num_waves == 2
        reference = ExplanationPipeline(
            CpuDevice(), granularity="columns", eps=1e-6, fusion="pair"
        ).run(pairs)
        for a, b in zip(reference.explanations, fleet.results):
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_over_budget_pair_raises_with_loop_hint(self):
        executor = FleetExecutor(
            CpuDevice(), granularity="columns", max_stack_bytes=100
        )
        with pytest.raises(MaskStackBudgetError, match="method='loop'"):
            executor.run(planted_pairs(1))


class TestFleetExecutorValidation:
    def test_empty_fleet_returns_empty_run(self):
        """The service's idle drain calls run([]) constantly: it must
        cost zero waves and zero simulated seconds, not raise."""
        device = CpuDevice()
        fleet = FleetExecutor(device, granularity="columns").run([])
        assert fleet.results == ()
        assert fleet.num_waves == 0
        assert device.stats.seconds == 0.0
        assert not device.stats.op_counts

    def test_plan_reuse_matches_fresh_plans(self):
        """Submit-time plan reuse: handing plan_for() specs back via
        plans= is bit-identical to letting run() rebuild them."""
        pairs = planted_pairs(3)
        executor = FleetExecutor(CpuDevice(), granularity="columns")
        plans = [executor.plan_for(x) for x, _ in pairs]
        reused = executor.run(pairs, plans=plans)
        fresh = FleetExecutor(CpuDevice(), granularity="columns").run(pairs)
        for a, b in zip(reused.results, fresh.results):
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.kernel, b.kernel)
            assert a.residual == b.residual

    def test_plans_validation(self):
        pairs = planted_pairs(2)
        executor = FleetExecutor(CpuDevice(), granularity="columns")
        with pytest.raises(ValueError, match="plans"):
            executor.run(pairs, plans=[executor.plan_for(pairs[0][0])])
        with pytest.raises(ValueError, match="does not match"):
            executor.run(
                pairs, plans=[executor.plan_for(np.ones((4, 4)))] * 2
            )
        with pytest.raises(ValueError, match="needs a mask plan"):
            executor.run(pairs, plans=[None, None])
        elements = FleetExecutor(CpuDevice(), granularity="elements")
        with pytest.raises(ValueError, match="no mask plan"):
            elements.run(pairs, plans=[executor.plan_for(pairs[0][0])] * 2)

    def test_non_matrix_pair(self):
        with pytest.raises(ValueError):
            FleetExecutor(CpuDevice(), granularity="columns").run(
                [(np.ones(4), np.ones(4))]
            )

    def test_unknown_granularity(self):
        with pytest.raises(ValueError):
            FleetExecutor(CpuDevice(), granularity="pixels")

    def test_blocks_needs_block_shape(self):
        with pytest.raises(ValueError):
            FleetExecutor(CpuDevice(), granularity="blocks")

    def test_unknown_reduction(self):
        with pytest.raises(ValueError):
            FleetExecutor(CpuDevice(), granularity="columns", reduction="magic")

    def test_pipeline_rejects_unknown_fusion(self):
        with pytest.raises(ValueError):
            ExplanationPipeline(CpuDevice(), granularity="columns", fusion="galaxy")


class TestSchedulerExplainBatch:
    def test_explain_batch_matches_pipeline_wave_run(self):
        pairs = planted_pairs(3)
        chip = make_tpu_chip(num_cores=4, precision="fp32", mxu_rows=8, mxu_cols=8)
        fleet = MultiInputScheduler(chip).explain_batch(
            pairs, granularity="blocks", block_shape=(4, 4), eps=1e-8
        )
        assert fleet.stats is not None
        assert fleet.stats.op_counts["dispatch"] == 1
        reference = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=(4, 4), eps=1e-8
        ).run(pairs)
        for a, b in zip(reference.explanations, fleet.results):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_plan_waves_exposes_schedule(self):
        chip = make_tpu_chip(num_cores=4, precision="fp32", mxu_rows=8, mxu_cols=8)
        schedule = MultiInputScheduler(chip).plan_waves(
            planted_pairs(4), granularity="columns"
        )
        assert schedule.num_waves == 1
        assert schedule.num_pairs == 4


class TestComplexOperands:
    """Bit-identity must survive complex-valued pairs (review findings)."""

    def _complex_pairs(self, count=2, shape=(6, 6), seed=30):
        rng = np.random.default_rng(seed)
        pairs = []
        for _ in range(count):
            x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
            kernel = rng.standard_normal(shape)
            pairs.append((x, fft_circular_convolve2d(x, kernel)))
        return pairs

    @pytest.mark.parametrize("granularity,kwargs", [
        ("columns", {}),
        ("elements", {}),
    ])
    def test_complex_pairs_wave_equals_pair(self, granularity, kwargs):
        import warnings

        pairs = self._complex_pairs()
        runs = {}
        with warnings.catch_warnings():
            # The elements fast path casts complex operands to float64
            # in both fusion modes (numpy ComplexWarning); equivalence
            # is what this test asserts.
            warnings.simplefilter("ignore")
            for fusion in ("pair", "wave"):
                pipeline = ExplanationPipeline(
                    CpuDevice(), granularity=granularity, eps=1e-8,
                    fusion=fusion, **kwargs,
                )
                runs[fusion] = pipeline.run(pairs)
        for a, b in zip(runs["pair"].explanations, runs["wave"].explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_real_and_complex_pairs_never_share_a_wave(self):
        """Mixing would upcast real rows to complex128 and keep inverse
        -transform roundoff imaginaries that per-pair execution drops."""
        rng = np.random.default_rng(31)
        real = planted_pairs(2, shape=(6, 6), seed=32)
        cplx = self._complex_pairs(2)
        pairs = [real[0], cplx[0], real[1], cplx[1]]
        executor = FleetExecutor(CpuDevice(), granularity="columns")
        schedule = executor.schedule(pairs)
        assert schedule.num_waves == 2
        assert schedule.waves[0].pair_indices == (0, 2)
        assert schedule.waves[1].pair_indices == (1, 3)
        # And the fused results still match per-pair execution exactly.
        run_wave = ExplanationPipeline(
            CpuDevice(), granularity="columns", eps=1e-8
        ).run(pairs)
        run_pair = ExplanationPipeline(
            CpuDevice(), granularity="columns", eps=1e-8, fusion="pair"
        ).run(pairs)
        for a, b in zip(run_pair.explanations, run_wave.explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual


class TestLedgerHygiene:
    def test_invalid_row_kernel_leaves_stats_clean(self):
        """A rejected multi-kernel call must not record phantom
        kernel-spectrum entries (review finding)."""
        device = CpuDevice()
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(np.ones((2, 4, 4)), np.ones((2, 4, 4)))
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(
                np.ones((2, 4, 4)), np.ones((2, 4, 4)), row_kernel=np.array([0, 9])
            )
        assert device.stats.seconds == 0.0
        assert not device.stats.op_counts
