"""Streaming fleet executor: lazy MaskSpec chunks + pipelined waves.

The PR-3 contracts:

* lazy chunk generation is bit-identical to the dense ``MaskPlan``
  constructors at every chunk size;
* streamed chunked scoring == dense ``method="batched"`` ==
  ``method="loop"`` bit-identically, for real and complex operands,
  with identical device ledgers;
* a plan whose dense stack exceeds ``max_stack_bytes`` streams to
  completion (the budget stopped being a ceiling);
* ``pipelined=True`` elapsed <= serial elapsed with identical per-device
  compute stats and dispatch counts, strictly below once waves overlap.
"""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_CHUNK_ROWS,
    ExplanationPipeline,
    FleetExecutor,
    FleetSchedule,
    MaskPlan,
    MaskSpec,
    MaskStackBudgetError,
    TpuBackend,
    effective_chunk_rows,
    make_tpu_chip,
    score_plan,
)
from repro.fft import fft_circular_convolve2d
from repro.fft.convolution import (
    fft_circular_convolve2d_batch,
    fft_circular_convolve2d_chunks,
)
from repro.hw.cpu import CpuDevice
from repro.hw.device import PipelineStage, pipelined_elapsed_seconds
from repro.hw.gpu import GpuDevice

SPECS = [
    ("elements", lambda shape: MaskSpec.elements(shape)),
    ("blocks", lambda shape: MaskSpec.blocks(shape, (2, 2))),
    ("columns", lambda shape: MaskSpec.columns(shape)),
    ("rows", lambda shape: MaskSpec.rows(shape)),
]


def small_backend(num_cores=4):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def fitted_setup(shape=(8, 8), seed=0, complex_input=False):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    if complex_input:
        x = x + 1j * rng.standard_normal(shape)
    else:
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
    kernel = rng.standard_normal(shape)
    return x, kernel, fft_circular_convolve2d(x, kernel)


def planted_pairs(count, shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel)))
    return pairs


class TestMaskSpecGeneration:
    @pytest.mark.parametrize("name,make_spec", SPECS)
    @pytest.mark.parametrize("chunk_rows", [1, 3, DEFAULT_CHUNK_ROWS, 10_000])
    def test_chunks_bit_identical_to_dense_constructor(
        self, name, make_spec, chunk_rows
    ):
        spec = make_spec((6, 8))
        dense = spec.materialize()
        chunks = list(spec.iter_chunks(chunk_rows))
        np.testing.assert_array_equal(
            np.concatenate([chunk for chunk, _ in chunks]), dense.masks
        )
        # Row ranges tile [0, num_masks) in order, chunk sizes bounded.
        next_row = 0
        for chunk, rows in chunks:
            assert rows.start == next_row and len(rows) == chunk.shape[0]
            assert chunk.shape[0] <= chunk_rows
            next_row = rows.stop
        assert next_row == spec.num_masks

    @pytest.mark.parametrize("name,make_spec", SPECS)
    def test_spec_metadata_matches_dense_plan(self, name, make_spec):
        spec = make_spec((6, 8))
        dense = spec.materialize()
        assert spec.num_masks == dense.num_masks
        assert spec.plane_shape == dense.plane_shape
        assert spec.output_shape == dense.output_shape
        assert spec.labels == dense.labels
        assert spec.nbytes == dense.nbytes
        assert spec.bool_nbytes == dense.bool_nbytes
        assert len(spec) == len(dense)

    def test_apply_chunks_matches_dense_apply(self):
        spec = MaskSpec.blocks((8, 8), (2, 2))
        x = np.arange(64.0).reshape(8, 8)
        dense = spec.materialize().apply(x, fill_value=-2.0)
        streamed = np.concatenate(
            [chunk for chunk, _ in spec.apply_chunks(x, fill_value=-2.0, chunk_rows=5)]
        )
        np.testing.assert_array_equal(streamed, dense)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MaskSpec("pixels", (4, 4))
        with pytest.raises(ValueError):
            MaskSpec("blocks", (4, 4))  # needs a block shape
        with pytest.raises(ValueError):
            MaskSpec.blocks((4, 4), (3, 3))  # does not tile
        with pytest.raises(ValueError):
            MaskSpec("columns", (4, 4), block_shape=(2, 2))
        with pytest.raises(ValueError):
            MaskSpec.columns((0, 4))
        with pytest.raises(ValueError):
            list(MaskSpec.columns((4, 4)).iter_chunks(0))
        with pytest.raises(ValueError):
            list(MaskSpec.rows((4, 4)).apply_chunks(np.ones((5, 5))))


class TestStreamedScoringEquivalence:
    @pytest.mark.parametrize("name,make_spec", SPECS)
    @pytest.mark.parametrize("complex_input", [False, True], ids=["real", "complex"])
    def test_streamed_equals_dense_equals_loop(self, name, make_spec, complex_input):
        x, kernel, y = fitted_setup(seed=3, complex_input=complex_input)
        spec = make_spec(x.shape)
        dense = score_plan(x, kernel, y, spec.materialize(), method="batched")
        streamed = score_plan(x, kernel, y, spec, method="batched")
        looped = score_plan(x, kernel, y, spec, method="loop")
        np.testing.assert_array_equal(streamed, dense)
        np.testing.assert_array_equal(streamed, looped)

    @pytest.mark.parametrize("chunk_rows", [1, 2, 7, 64])
    def test_chunk_size_never_changes_bits(self, chunk_rows):
        x, kernel, y = fitted_setup(seed=4)
        spec = MaskSpec.elements(x.shape)
        reference = score_plan(x, kernel, y, spec.materialize(), method="batched")
        np.testing.assert_array_equal(
            score_plan(x, kernel, y, spec, method="batched", chunk_rows=chunk_rows),
            reference,
        )
        # A dense plan with chunk_rows set streams too, identically.
        np.testing.assert_array_equal(
            score_plan(
                x, kernel, y, spec.materialize(), method="batched",
                chunk_rows=chunk_rows,
            ),
            reference,
        )

    @pytest.mark.parametrize(
        "device_factory", [CpuDevice, GpuDevice, small_backend],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_streamed_device_ledger_identical_to_dense(self, device_factory):
        x, kernel, y = fitted_setup(seed=5)
        spec = MaskSpec.columns(x.shape)
        dense_device = device_factory()
        dense = score_plan(
            x, kernel, y, spec.materialize(), method="batched", device=dense_device
        )
        streamed_device = device_factory()
        streamed = score_plan(
            x, kernel, y, spec, method="batched", device=streamed_device
        )
        np.testing.assert_array_equal(streamed, dense)
        assert streamed_device.stats.op_counts == dense_device.stats.op_counts
        assert streamed_device.stats.seconds == dense_device.stats.seconds

    def test_over_budget_plan_streams_to_completion(self):
        """The acceptance scenario: num_masks * M * N exceeds the budget
        yet streaming succeeds, bit-identical to method='loop'."""
        x, kernel, y = fitted_setup(seed=6, shape=(16, 16))
        spec = MaskSpec.elements(x.shape)  # 256 masks: 512 KiB dense stack
        budget = spec.nbytes // 8
        with pytest.raises(MaskStackBudgetError):
            score_plan(
                x, kernel, y, spec.materialize(), method="batched",
                max_stack_bytes=budget,
            )
        streamed = score_plan(
            x, kernel, y, spec, method="batched", max_stack_bytes=budget
        )
        looped = score_plan(x, kernel, y, spec, method="loop")
        np.testing.assert_array_equal(streamed, looped)

    def test_budget_below_one_plane_still_raises(self):
        x, kernel, y = fitted_setup(seed=7)
        plane_bytes = x.size * 8
        with pytest.raises(MaskStackBudgetError, match="loop"):
            score_plan(
                x, kernel, y, MaskSpec.columns(x.shape), method="batched",
                max_stack_bytes=plane_bytes - 1,
            )

    def test_effective_chunk_rows_clamps_to_budget(self):
        assert effective_chunk_rows((4, 4), None, None) == DEFAULT_CHUNK_ROWS
        assert effective_chunk_rows((4, 4), 7, None) == 7
        # Budget holds 3 planes of 128 bytes: chunk clamps to 3 rows.
        assert effective_chunk_rows((4, 4), None, 3 * 128) == 3
        with pytest.raises(MaskStackBudgetError):
            effective_chunk_rows((4, 4), None, 127)
        with pytest.raises(ValueError):
            effective_chunk_rows((4, 4), 0, None)


class TestChunkedConvolution:
    def test_chunk_stream_equals_dense_batch(self):
        rng = np.random.default_rng(8)
        stack = rng.standard_normal((9, 5, 6))
        kernels = rng.standard_normal((3, 5, 6))
        row_kernel = np.array([0, 0, 0, 1, 1, 2, 2, 2, 2])
        dense = fft_circular_convolve2d_batch(stack, kernels, row_kernel=row_kernel)
        chunks = ((stack[s : s + 2], range(s, min(s + 2, 9))) for s in range(0, 9, 2))
        streamed = np.empty_like(dense)
        for convolved, rows in fft_circular_convolve2d_chunks(
            chunks, kernels, row_kernel=row_kernel, num_rows=9
        ):
            streamed[rows.start : rows.stop] = convolved
        np.testing.assert_array_equal(streamed, dense)

    def test_sorted_run_fast_path_matches_unsorted_gather(self):
        """The run-length slice-view fast path (sorted row maps) is
        bit-identical to the fancy-index gather (unsorted maps)."""
        rng = np.random.default_rng(9)
        stack = rng.standard_normal((6, 4, 4))
        kernels = rng.standard_normal((2, 4, 4))
        sorted_map = np.array([0, 0, 0, 1, 1, 1])
        permutation = np.array([3, 0, 4, 1, 5, 2])
        shuffled = fft_circular_convolve2d_batch(
            stack[permutation], kernels, row_kernel=sorted_map[permutation]
        )
        ordered = fft_circular_convolve2d_batch(
            stack, kernels, row_kernel=sorted_map
        )
        np.testing.assert_array_equal(shuffled[np.argsort(permutation)], ordered)

    def test_desynchronized_chunk_stream_raises(self):
        kernel = np.ones((4, 4))
        with pytest.raises(ValueError, match="desynchronized"):
            list(
                fft_circular_convolve2d_chunks(
                    [(np.ones((2, 4, 4)), range(1, 3))], kernel, num_rows=3
                )
            )
        with pytest.raises(ValueError, match="expected 3 rows"):
            list(
                fft_circular_convolve2d_chunks(
                    [(np.ones((2, 4, 4)), range(0, 2))], kernel, num_rows=3
                )
            )

    def test_device_chunk_stream_validation(self):
        device = CpuDevice()
        with pytest.raises(ValueError):
            device.conv2d_circular_batch_chunks([], np.ones((2, 4, 4)), num_rows=2)
        with pytest.raises(ValueError):
            device.conv2d_circular_batch_chunks(
                [], np.ones((4, 4)), num_rows=0
            )
        with pytest.raises(ValueError):
            device.conv2d_circular_batch_chunks(
                [], np.ones((2, 4, 4)), num_rows=2, row_kernel=np.array([0, 5])
            )
        with pytest.raises(ValueError):
            device.conv2d_circular_batch_chunks(
                [], np.ones((4, 4)), num_rows=2, row_kernel=np.array([0, 0])
            )


class TestPipelinedElapsedFormula:
    def test_single_stage_degenerates_to_serial(self):
        stage = PipelineStage(prologue=2.0, body=5.0, epilogue=1.0)
        assert pipelined_elapsed_seconds([stage]) == stage.total
        assert pipelined_elapsed_seconds([]) == 0.0

    def test_compute_bound_hides_all_infeed(self):
        # infeed_0 + compute_0 + compute_1 + outfeed_1: stage 1's
        # prologue (1.0) hides entirely under stage 0's compute (10.0).
        stages = [
            PipelineStage(1.0, 10.0, 0.5),
            PipelineStage(1.0, 10.0, 0.5),
        ]
        assert pipelined_elapsed_seconds(stages) == 1.0 + 10.5 + 10.0 + 0.5

    def test_infeed_bound_exposes_link_time(self):
        # Infeed dominates: elapsed collapses to the transfer chain.
        stages = [
            PipelineStage(10.0, 1.0, 0.0),
            PipelineStage(10.0, 1.0, 0.0),
        ]
        assert pipelined_elapsed_seconds(stages) == 10.0 + 10.0 + 1.0

    def test_never_exceeds_serial(self):
        rng = np.random.default_rng(10)
        for _ in range(50):
            stages = [
                PipelineStage(*rng.uniform(0.0, 3.0, size=3)) for _ in range(5)
            ]
            serial = sum(stage.total for stage in stages)
            assert pipelined_elapsed_seconds(stages) <= serial + 1e-12


class TestPipelinedExecution:
    def _runs(self, device_factory, count=12, wave_width=4):
        pairs = planted_pairs(count)
        runs = {}
        for pipelined in (False, True):
            pipeline = ExplanationPipeline(
                device_factory(), granularity="columns", eps=1e-8,
                pipelined=pipelined, max_pairs_per_wave=wave_width,
            )
            runs[pipelined] = pipeline.run(pairs)
        return runs

    @pytest.mark.parametrize(
        "device_factory", [CpuDevice, GpuDevice, small_backend],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_pipelined_at_most_serial_with_identical_compute(self, device_factory):
        runs = self._runs(device_factory)
        serial, pipelined = runs[False], runs[True]
        assert pipelined.simulated_seconds <= serial.simulated_seconds
        serial_ops = dict(serial.stats.op_counts)
        pipelined_ops = dict(pipelined.stats.op_counts)
        pipelined_ops.pop("infeed_overlap", None)
        assert pipelined_ops == serial_ops
        for a, b in zip(serial.explanations, pipelined.explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.kernel, b.kernel)
            assert a.residual == b.residual

    def test_multi_wave_tpu_fleet_strictly_faster_pipelined(self):
        runs = self._runs(small_backend)
        assert runs[True].simulated_seconds < runs[False].simulated_seconds
        assert (
            runs[True].stats.op_counts["dispatch"]
            == runs[False].stats.op_counts["dispatch"]
            == 3
        )
        # The credited time is exposed on the ledger, once per run.
        assert runs[True].stats.op_counts["infeed_overlap"] == 1
        assert runs[True].stats.op_seconds["infeed_overlap"] < 0

    def test_single_wave_times_identically_either_way(self):
        pairs = planted_pairs(4)
        seconds = {}
        for pipelined in (False, True):
            run = ExplanationPipeline(
                small_backend(), granularity="columns", eps=1e-8,
                pipelined=pipelined,
            ).run(pairs)
            seconds[pipelined] = run.simulated_seconds
            assert run.num_programs == 1
        assert seconds[True] == seconds[False]

    def test_tpu_chip_ledger_records_overlap_event(self):
        backend = small_backend()
        executor = FleetExecutor(
            backend, granularity="columns", max_pairs_per_wave=2
        )
        executor.run(planted_pairs(6), pipelined=True)
        assert backend.chip.event_count("infeed_overlap") == 1

    def test_pipeline_scopes_do_not_nest(self):
        device = CpuDevice()
        with device.pipeline():
            with pytest.raises(RuntimeError, match="nest"):
                with device.pipeline():
                    pass

    def test_empty_pipeline_scope_is_free(self):
        device = CpuDevice()
        with device.pipeline():
            pass
        assert device.stats.seconds == 0.0
        assert not device.stats.op_counts

    def test_stats_credit_validation(self):
        device = CpuDevice()
        with pytest.raises(ValueError):
            device.stats.credit("infeed_overlap", -1.0)


class TestStreamingFleet:
    def test_over_budget_pair_gets_its_own_wave_and_streams(self):
        """PR-2 raised MaskStackBudgetError here; streaming runs it.
        Under the historical dense budgeting every pair takes a wave of
        its own; the chunk-adaptive default fuses all three into one
        wave -- both bit-identical to per-pair execution."""
        pairs = planted_pairs(3)
        plan_bytes = MaskPlan.columns((8, 8)).nbytes + 8 * 8 * 8  # + residual
        dense = FleetExecutor(
            CpuDevice(), granularity="columns",
            max_stack_bytes=plan_bytes - 1, dense_budget=True,
        ).run(pairs)
        assert dense.num_waves == 3  # every pair alone exceeds the budget
        adaptive = FleetExecutor(
            CpuDevice(), granularity="columns", max_stack_bytes=plan_bytes - 1
        ).run(pairs)
        assert adaptive.num_waves == 1  # the budget bounds the chunk only
        reference = ExplanationPipeline(
            CpuDevice(), granularity="columns", eps=1e-6, fusion="pair",
            max_stack_bytes=None,
        ).run(pairs)
        for fleet in (dense, adaptive):
            for a, b in zip(reference.explanations, fleet.results):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.residual == b.residual

    def test_chunk_adaptive_planning_shrinks_dispatch_count_at_100_pairs(self):
        """The chunk-adaptive acceptance contract: at 100 pairs under a
        budget that dense semantics fragment into many waves, the
        adaptive default executes strictly fewer dispatches (fewer
        program scopes) with bit-identical scores."""
        pairs = planted_pairs(100)
        plan_bytes = (MaskPlan.columns((8, 8)).num_masks + 1) * 8 * 8 * 8
        runs = {}
        for dense_budget in (True, False):
            backend = small_backend()
            run = ExplanationPipeline(
                backend, granularity="columns", eps=1e-8,
                max_stack_bytes=4 * plan_bytes, dense_budget=dense_budget,
            ).run(pairs)
            runs[dense_budget] = run
        assert runs[True].stats.op_counts["dispatch"] == 25  # 4-pair waves
        assert runs[False].stats.op_counts["dispatch"] == 1  # one fused wave
        assert (
            runs[False].stats.op_counts["dispatch"]
            < runs[True].stats.op_counts["dispatch"]
        )
        assert runs[False].simulated_seconds < runs[True].simulated_seconds
        for a, b in zip(runs[True].explanations, runs[False].explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_dense_schedule_semantics_still_raise(self):
        with pytest.raises(MaskStackBudgetError, match="loop"):
            FleetSchedule.plan([(4, 4)], [100], max_stack_bytes=1000)
        # Streaming semantics: same fleet plans fine, one wave.
        schedule = FleetSchedule.plan(
            [(4, 4)], [100], max_stack_bytes=1000, streaming=True
        )
        assert schedule.num_waves == 1

    def test_streaming_plane_too_large_still_raises(self):
        with pytest.raises(MaskStackBudgetError, match="single plane"):
            FleetSchedule.plan([(8, 8)], [4], max_stack_bytes=100, streaming=True)

    def test_tiny_chunks_bit_identical_at_fleet_scale(self):
        pairs = planted_pairs(5)
        reference = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=(2, 2), eps=1e-8,
            fusion="pair",
        ).run(pairs)
        chunked = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=(2, 2), eps=1e-8,
            chunk_rows=1,
        ).run(pairs)
        for a, b in zip(reference.explanations, chunked.explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_wave_ledger_unchanged_by_chunk_size(self):
        """Streaming is a memory optimization, not a cost change: the
        simulated ledger is invariant to chunk_rows."""
        pairs = planted_pairs(4)
        stats = {}
        for chunk_rows in (1, 3, 64):
            run = ExplanationPipeline(
                small_backend(), granularity="columns", eps=1e-8,
                chunk_rows=chunk_rows,
            ).run(pairs)
            stats[chunk_rows] = run.stats
        assert stats[1].op_counts == stats[64].op_counts == stats[3].op_counts
        assert stats[1].seconds == stats[3].seconds == stats[64].seconds


class TestQuantizedStreaming:
    """PR-4 contracts: the precision axis quantizes per plane, so
    streamed, dense and loop execution stay bit-identical at bf16 and
    int8, with the documented error bound holding for batched runs."""

    MASK_SPECS = [spec for spec in SPECS if spec[0] != "elements"]

    @pytest.mark.parametrize("name,make_spec", MASK_SPECS)
    @pytest.mark.parametrize("precision", ["bf16", "int8"])
    def test_streamed_equals_dense_equals_loop_quantized(
        self, name, make_spec, precision
    ):
        x, kernel, y = fitted_setup(seed=6)
        spec = make_spec(x.shape)
        dense = score_plan(
            x, kernel, y, spec.materialize(), method="batched", precision=precision
        )
        streamed = score_plan(x, kernel, y, spec, method="batched", precision=precision)
        looped = score_plan(x, kernel, y, spec, method="loop", precision=precision)
        np.testing.assert_array_equal(streamed, dense)
        np.testing.assert_array_equal(streamed, looped)

    @pytest.mark.parametrize("chunk_rows", [1, 3, 64])
    def test_quantized_chunk_size_never_changes_bits(self, chunk_rows):
        x, kernel, y = fitted_setup(seed=7)
        spec = MaskSpec.columns(x.shape)
        reference = score_plan(
            x, kernel, y, spec.materialize(), method="batched", precision="int8"
        )
        np.testing.assert_array_equal(
            score_plan(
                x, kernel, y, spec, method="batched", precision="int8",
                chunk_rows=chunk_rows,
            ),
            reference,
        )

    @pytest.mark.parametrize(
        "device_factory", [CpuDevice, GpuDevice, small_backend],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_quantized_device_paths_match_no_device_paths(self, device_factory):
        x, kernel, y = fitted_setup(seed=8)
        spec = MaskSpec.blocks(x.shape, (2, 2))
        reference = score_plan(x, kernel, y, spec, method="batched", precision="int8")
        device = device_factory()
        np.testing.assert_array_equal(
            score_plan(
                x, kernel, y, spec, method="batched", device=device,
                precision="int8",
            ),
            reference,
        )
        np.testing.assert_array_equal(
            score_plan(
                x, kernel, y, spec, method="loop", device=device_factory(),
                precision="int8",
            ),
            reference,
        )

    def test_fp64_precision_matches_unquantized_execution(self):
        x, kernel, y = fitted_setup(seed=9)
        spec = MaskSpec.rows(x.shape)
        np.testing.assert_array_equal(
            score_plan(x, kernel, y, spec, method="batched", precision="fp64"),
            score_plan(x, kernel, y, spec, method="batched"),
        )

    def test_quantized_wave_fleet_matches_quantized_loop(self):
        """The acceptance contract: ExplanationPipeline(precision="int8")
        scores match method="loop" at int8 bit for bit, streamed (wave)
        and dense (pair)."""
        pairs = planted_pairs(5, seed=10)
        runs = {
            mode: ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(2, 2),
                eps=1e-8, precision="int8", **kwargs,
            ).run(pairs)
            for mode, kwargs in {
                "wave": dict(fusion="wave"),
                "pair": dict(fusion="pair"),
                "loop": dict(method="loop"),
            }.items()
        }
        for a, b, c in zip(
            runs["wave"].explanations,
            runs["pair"].explanations,
            runs["loop"].explanations,
        ):
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.scores, c.scores)
            assert a.residual == b.residual == c.residual

    def test_monotone_error_bound_holds_for_batched_execution(self):
        """quantization_error_bound's conv extension bounds executed
        batched scores, monotonically in bits."""
        from repro.hw.quantize import quantized_score_error_bound

        x, kernel, y = fitted_setup(seed=11)
        spec = MaskSpec.blocks(x.shape, (2, 2))
        exact = score_plan(x, kernel, y, spec, method="batched")
        quantized = score_plan(x, kernel, y, spec, method="batched", precision="int8")
        score_bound = quantized_score_error_bound(x, kernel, bits=8)
        assert np.max(np.abs(quantized - exact)) <= score_bound
        bounds = [quantized_score_error_bound(x, kernel, bits=b) for b in (4, 8, 16)]
        assert bounds[0] > bounds[1] > bounds[2]

    def test_precision_error_ladder_is_monotone(self):
        x, kernel, y = fitted_setup(seed=12)
        spec = MaskSpec.columns(x.shape)
        exact = score_plan(x, kernel, y, spec, method="batched")
        errors = {
            name: np.max(np.abs(
                score_plan(x, kernel, y, spec, method="batched", precision=name)
                - exact
            ))
            for name in ("fp64", "bf16", "int8")
        }
        assert errors["fp64"] == 0.0
        assert errors["int8"] > errors["bf16"] > 0.0

    def test_quantized_dispatch_counts_match_fp64(self):
        """Precision changes numerics and per-op seconds, never the
        launch structure: dispatch and op counts are identical across
        the ladder."""
        pairs = planted_pairs(4, seed=13)
        counts = {}
        for name in ("fp64", "int8"):
            run = ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(2, 2),
                eps=1e-8, precision=name,
            ).run(pairs)
            counts[name] = run.stats.op_counts
        assert counts["fp64"] == counts["int8"]

    def test_quantized_wave_cheaper_than_fp64_wave_on_tpu(self):
        """The speed side of the trade-off: int8 waves price below fp64
        waves (MXU rate + 1-byte infeed) with identical structure."""
        pairs = planted_pairs(4, seed=14)
        seconds = {}
        for name in ("int8", "fp64"):
            run = ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(2, 2),
                eps=1e-8, precision=name,
            ).run(pairs)
            seconds[name] = run.simulated_seconds
        assert seconds["int8"] < seconds["fp64"]

    def test_quantizing_precision_rejects_elements_granularity(self):
        with pytest.raises(ValueError, match="linearity"):
            ExplanationPipeline(
                small_backend(), granularity="elements", precision="int8"
            )
        with pytest.raises(ValueError, match="linearity"):
            FleetExecutor(small_backend(), granularity="elements", precision="bf16")

    def test_unknown_precision_rejected_with_vocabulary(self):
        with pytest.raises(ValueError, match="int8"):
            ExplanationPipeline(
                small_backend(), granularity="columns", precision="fp16"
            )
