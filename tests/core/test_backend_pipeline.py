"""TpuBackend device semantics and the end-to-end explanation pipeline."""

import numpy as np
import pytest

from repro.core import (
    ExplanationPipeline,
    OutputEmbedding,
    TpuBackend,
    make_tpu_chip,
)
from repro.fft import fft_circular_convolve2d
from repro.hw import CpuDevice, GpuDevice


def small_backend(num_cores=4, precision="fp32"):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision=precision, mxu_rows=8, mxu_cols=8)
    )


def planted_pair(shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    x[0, 0] += 5.0 * np.prod(shape) ** 0.5
    kernel = rng.standard_normal(shape)
    y = fft_circular_convolve2d(x, kernel)
    return x, y


class TestTpuBackend:
    def test_matmul_functional(self):
        backend = small_backend()
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        np.testing.assert_allclose(backend.matmul(a, b), a @ b, atol=1e-6)

    def test_fft2_functional(self):
        backend = small_backend()
        x = np.random.default_rng(2).standard_normal((8, 8))
        np.testing.assert_allclose(backend.fft2(x), np.fft.fft2(x), atol=1e-6)

    def test_sharded_matmul_faster_than_single_core(self):
        many = small_backend(num_cores=8)
        one = small_backend(num_cores=1)
        assert many.matmul_seconds(512, 64, 64) < one.matmul_seconds(512, 64, 64)

    def test_fft2_cost_scales_with_cores(self):
        many = small_backend(num_cores=8)
        one = small_backend(num_cores=1)
        assert many.fft2_seconds(256, 256) < one.fft2_seconds(256, 256)

    def test_program_scope_charges_dispatch_and_feeds(self):
        backend = small_backend()
        with backend.program(infeed_bytes=1000, outfeed_bytes=500):
            pass
        stats = backend.take_stats()
        assert stats.op_counts["dispatch"] == 1
        assert stats.op_counts["infeed"] == 1
        assert stats.op_counts["outfeed"] == 1
        assert stats.seconds >= backend.chip.config.dispatch_latency_sec

    def test_program_scope_without_feeds(self):
        backend = small_backend()
        with backend.program():
            pass
        stats = backend.take_stats()
        assert stats.op_counts["dispatch"] == 1
        assert "infeed" not in stats.op_counts

    def test_int8_backend_quantizes(self):
        from repro.hw import quantized_matmul

        backend = small_backend(precision="int8")
        rng = np.random.default_rng(3)
        a = rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4))
        np.testing.assert_allclose(
            backend.matmul(a, b), quantized_matmul(a, b), atol=1e-12
        )

    def test_energy_model_scales_with_cores(self):
        assert small_backend(num_cores=8).energy_joules(1.0) == pytest.approx(
            8 * small_backend(num_cores=1).energy_joules(1.0)
        )


class TestExplanationPipeline:
    @pytest.mark.parametrize(
        "device_factory",
        [CpuDevice, GpuDevice, small_backend],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_runs_on_every_backend(self, device_factory):
        device = device_factory()
        pipeline = ExplanationPipeline(
            device, granularity="blocks", block_shape=(2, 2), eps=1e-8
        )
        pairs = [planted_pair(seed=s) for s in range(2)]
        run = pipeline.run(pairs)
        assert len(run.explanations) == 2
        assert run.simulated_seconds > 0
        assert run.seconds_per_pair == pytest.approx(run.simulated_seconds / 2)
        for explanation in run.explanations:
            assert explanation.scores.shape == (4, 4)
            assert explanation.residual < 1e-4  # consistent pair distills exactly

    def test_column_granularity_for_traces(self):
        pipeline = ExplanationPipeline(CpuDevice(), granularity="columns")
        run = pipeline.run([planted_pair(seed=7)])
        assert run.explanations[0].scores.shape == (8,)

    def test_rows_and_elements_granularities(self):
        for granularity, shape in [("rows", (8,)), ("elements", (8, 8))]:
            pipeline = ExplanationPipeline(CpuDevice(), granularity=granularity)
            run = pipeline.run([planted_pair(seed=8)])
            assert run.explanations[0].scores.shape == shape

    def test_vector_outputs_with_embedding(self):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((8, 8))
        x[0, 0] += 40.0
        logits = rng.standard_normal(4)
        pipeline = ExplanationPipeline(
            CpuDevice(),
            granularity="blocks",
            block_shape=(4, 4),
            embedding=OutputEmbedding("spatial"),
        )
        run = pipeline.run([(x, logits)])
        assert run.explanations[0].scores.shape == (2, 2)

    def test_tpu_pays_one_dispatch_per_pair_under_pair_fusion(self):
        backend = small_backend()
        pipeline = ExplanationPipeline(
            backend, granularity="blocks", block_shape=(4, 4), eps=1e-8,
            fusion="pair",
        )
        run = pipeline.run([planted_pair(seed=s) for s in range(3)])
        assert run.stats.op_counts["dispatch"] == 3
        assert run.num_programs == 3

    def test_tpu_pays_one_dispatch_per_wave_under_wave_fusion(self):
        backend = small_backend()
        pipeline = ExplanationPipeline(
            backend, granularity="blocks", block_shape=(4, 4), eps=1e-8
        )
        run = pipeline.run([planted_pair(seed=s) for s in range(3)])
        # Equal-shape pairs fuse into one wave: one program, one dispatch,
        # and no per-pair residual round trips.
        assert run.stats.op_counts["dispatch"] == 1
        assert "conv_round_trip" not in run.stats.op_counts
        assert run.num_programs == 1

    def test_wave_and_pair_fusion_agree_bitwise(self):
        pairs = [planted_pair(seed=s) for s in range(3)]
        runs = {}
        for fusion in ("pair", "wave"):
            pipeline = ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(4, 4),
                eps=1e-8, fusion=fusion,
            )
            runs[fusion] = pipeline.run(pairs)
        for a, b in zip(runs["pair"].explanations, runs["wave"].explanations):
            np.testing.assert_array_equal(a.scores, b.scores)
            np.testing.assert_array_equal(a.kernel, b.kernel)
            assert a.residual == b.residual

    def test_speedup_ordering_cpu_slowest_tpu_fastest(self):
        """The structural Table II property, asserted at the workload
        scale the paper measures (large transforms).  At tiny sizes the
        GPU's kernel-launch overhead makes it *slower* than the CPU --
        also physically correct, and covered by the Figure 4 benches."""
        cpu = CpuDevice()
        gpu = GpuDevice()
        tpu = TpuBackend(make_tpu_chip(num_cores=128))
        size = 1024
        t_cpu = cpu.fft2_seconds(size, size)
        t_gpu = gpu.fft2_seconds(size, size)
        t_tpu = tpu.fft2_seconds(size, size)
        assert t_cpu > t_gpu > t_tpu

    def test_validation(self):
        with pytest.raises(ValueError):
            ExplanationPipeline(CpuDevice(), granularity="pixels")
        with pytest.raises(ValueError):
            ExplanationPipeline(CpuDevice(), granularity="blocks")  # no block_shape
    def test_empty_batch_returns_empty_run(self):
        """The serving layer's idle drain path: an empty batch is a
        zero-cost run, not an error."""
        for method in ("batched", "loop"):
            pipeline = ExplanationPipeline(
                CpuDevice(), granularity="columns", method=method
            )
            run = pipeline.run([])
            assert run.explanations == []
            assert run.simulated_seconds == 0.0
            assert run.num_programs == 0
            assert not run.stats.op_counts
