"""Pod-sharded fleet execution: bit-identity, ledger shape, knobs.

The contract under test: sharding a fleet's waves across a pod of K
chips -- along either placement axis, at any precision -- changes only
the cost ledger, never a score, kernel or residual.
"""

import numpy as np
import pytest

from repro.core import (
    ExplanationPipeline,
    FleetExecutor,
    MultiInputScheduler,
    TpuBackend,
    make_tpu_chip,
    make_tpu_pod,
)
from repro.core.masking import MaskSpec
from repro.hw.pod import TpuPod

PLANE = (8, 8)


def backend():
    return TpuBackend(make_tpu_chip(num_cores=8))


def fleet_pairs(count=7, shape=PLANE, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(shape), rng.standard_normal(shape))
        for _ in range(count)
    ]


def assert_identical(run_a, run_b, context=""):
    assert len(run_a.results) == len(run_b.results)
    for a, b in zip(run_a.results, run_b.results):
        assert np.array_equal(a.scores, b.scores), context
        assert np.array_equal(a.kernel, b.kernel), context
        assert a.residual == b.residual, context


class TestBitIdentity:
    @pytest.mark.parametrize("placement", ["data", "chunk"])
    @pytest.mark.parametrize("num_chips", [1, 2, 4, 8])
    def test_scores_match_single_chip(self, placement, num_chips):
        pairs = fleet_pairs()
        reference = FleetExecutor(backend(), granularity="rows").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows",
            num_chips=num_chips, placement=placement,
        ).run(pairs)
        assert_identical(reference, sharded, f"{placement} x{num_chips}")

    @pytest.mark.parametrize("placement", ["data", "chunk"])
    @pytest.mark.parametrize("precision", ["fp64", "bf16", "int8"])
    def test_precisions_match_single_chip(self, placement, precision):
        pairs = fleet_pairs(seed=1)
        reference = FleetExecutor(
            backend(), granularity="rows", precision=precision
        ).run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows", precision=precision,
            num_chips=4, placement=placement,
        ).run(pairs)
        assert_identical(reference, sharded, f"{placement} {precision}")

    @pytest.mark.parametrize("placement", ["data", "chunk"])
    def test_multi_wave_and_serial(self, placement):
        pairs = fleet_pairs(count=9, seed=2)
        reference = FleetExecutor(
            backend(), granularity="columns", max_pairs_per_wave=4
        ).run(pairs)
        for pipelined in (True, False):
            sharded = FleetExecutor(
                backend(), granularity="columns", max_pairs_per_wave=4,
                num_chips=4, placement=placement,
            ).run(pairs, pipelined=pipelined)
            assert_identical(reference, sharded, f"{placement} {pipelined}")

    @pytest.mark.parametrize("placement", ["data", "chunk"])
    def test_elements_fast_path(self, placement):
        pairs = fleet_pairs(count=5, seed=3)
        reference = FleetExecutor(backend(), granularity="elements").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="elements",
            num_chips=4, placement=placement,
        ).run(pairs)
        assert_identical(reference, sharded, placement)

    def test_chips_exceeding_pairs(self):
        """More chips than pairs (or rows): extras stay idle, scores hold."""
        pairs = fleet_pairs(count=2, seed=4)
        reference = FleetExecutor(backend(), granularity="rows").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows", num_chips=8, placement="data"
        ).run(pairs)
        assert_identical(reference, sharded)


class TestPodLedger:
    def test_row_sum_identity_and_collective_rows(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        assert isinstance(pod, TpuPod)
        assert pod.stats.seconds == pytest.approx(
            sum(pod.stats.op_seconds.values())
        )
        assert pod.stats.op_seconds["pod_scatter"] > 0.0
        assert pod.stats.op_seconds["pod_gather"] > 0.0
        assert pod.stats.op_seconds["pod_compute_overlap"] < 0.0
        assert len(pod.collective_log) == 1

    def test_chunk_placement_broadcasts_spectra(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="chunk"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        assert pod.stats.op_seconds["pod_broadcast"] > 0.0

    def test_pod_faster_than_sum_of_chips(self):
        """Pod elapsed must be below total work (chips run concurrently)."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs(count=8))
        pod = executor.device
        work = sum(s.seconds for s in pod.chip_stats)
        assert pod.stats.seconds < work

    def test_explicit_pod_device(self):
        pod = make_tpu_pod(2, num_cores=8)
        executor = FleetExecutor(pod, granularity="rows")
        assert executor.pod is pod
        executor.run(fleet_pairs(count=3))
        assert len(pod.collective_log) == 1

    def test_num_chips_mismatch_rejected(self):
        pod = make_tpu_pod(2, num_cores=8)
        with pytest.raises(ValueError):
            FleetExecutor(pod, granularity="rows", num_chips=4)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            FleetExecutor(backend(), granularity="rows", placement="model")

    def test_single_chip_pod_matches_serial_timing(self):
        """num_chips=1 keeps the plain single-device path entirely."""
        executor = FleetExecutor(backend(), granularity="rows", num_chips=1)
        assert executor.pod is None


class TestPipelineAndSchedulerKnobs:
    def test_pipeline_pod_matches_single_chip(self):
        pairs = fleet_pairs()
        reference = ExplanationPipeline(backend(), granularity="rows").run(pairs)
        pod_run = ExplanationPipeline(
            backend(), granularity="rows", num_chips=4
        ).run(pairs)
        for a, b in zip(reference.explanations, pod_run.explanations):
            assert np.array_equal(a.scores, b.scores)
            assert a.residual == b.residual
        assert pod_run.simulated_seconds > 0.0

    def test_pipeline_rejects_pod_with_loop_method(self):
        with pytest.raises(ValueError):
            ExplanationPipeline(
                backend(), granularity="rows", method="loop", num_chips=4
            )
        with pytest.raises(ValueError):
            ExplanationPipeline(
                backend(), granularity="rows", fusion="pair", num_chips=4
            )

    def test_scheduler_explain_batch_num_chips(self):
        pairs = fleet_pairs(count=5, seed=5)
        chip = make_tpu_chip(num_cores=8)
        reference = MultiInputScheduler(chip).explain_batch(
            pairs, granularity="rows"
        )
        sharded = MultiInputScheduler(chip).explain_batch(
            pairs, granularity="rows", num_chips=4, placement="data"
        )
        assert_identical(reference, sharded)
        assert sharded.stats is not None
        assert sharded.stats.op_seconds["pod_scatter"] > 0.0


class TestServicePod:
    def test_service_pod_results_bit_identical(self):
        from repro.serve.loop import ExplanationService
        from repro.serve.workload import Request

        def trace():
            rng = np.random.default_rng(6)
            return [
                Request(
                    request_id=i,
                    arrival_time=0.001 * i,
                    x=rng.standard_normal(PLANE),
                    y=rng.standard_normal(PLANE),
                )
                for i in range(6)
            ]

        def results(report):
            records = sorted(
                (r for r in report.ledger.records if r.status == "completed"),
                key=lambda r: r.request_id,
            )
            return [r.result for r in records]

        single = ExplanationService(
            backend(), granularity="rows", cache_max_bytes=None
        ).process(trace())
        pod = ExplanationService(
            backend(), granularity="rows", cache_max_bytes=None, num_chips=4
        ).process(trace())
        for a, b in zip(results(single), results(pod)):
            assert np.array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_pipeline_service_inherits_pod(self):
        pipeline = ExplanationPipeline(
            backend(), granularity="rows", num_chips=2, placement="chunk"
        )
        service = pipeline.service(cache_max_bytes=None)
        assert isinstance(service.device, TpuPod)
        assert service.device is pipeline.device
        assert service.placement == "chunk"


class TestWindowedChunks:
    """The chunk placement's masking primitive: windowed iter_chunks."""

    def test_window_identity(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.arange(64.0).reshape(PLANE)
        full = list(spec.apply_chunks(x, fill_value=0.0, chunk_rows=3))
        lo, hi = 2, 7
        windowed = list(
            spec.apply_chunks(x, fill_value=0.0, chunk_rows=3, start=lo, stop=hi)
        )
        dense_full = np.concatenate([chunk for chunk, _ in full])
        dense_window = np.concatenate([chunk for chunk, _ in windowed])
        assert np.array_equal(dense_window, dense_full[lo:hi])
        covered = [r for _, rows in windowed for r in rows]
        assert covered == list(range(lo, hi))

    def test_window_validation(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.zeros(PLANE)
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, start=-1))
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, start=5, stop=4))
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, stop=spec.num_masks + 1))

    def test_empty_window(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.zeros(PLANE)
        assert list(spec.apply_chunks(x, chunk_rows=3, start=4, stop=4)) == []
