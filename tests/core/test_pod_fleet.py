"""Pod-sharded fleet execution: bit-identity, ledger shape, knobs.

The contract under test: sharding a fleet's waves across a pod of K
chips -- along any placement axis, at any precision -- changes only the
cost ledger, never a score, kernel or residual.  The ledger itself has
its own identities: sum-over-chips work is preserved in the audit rows,
and elapsed is the wave-stage walk (max-over-chips bodies plus the
remaining collectives), with the asynchronous host links hiding all but
one launch round trip per wave.
"""

import numpy as np
import pytest

from repro.core import (
    ExplanationPipeline,
    FleetExecutor,
    MultiInputScheduler,
    TpuBackend,
    make_tpu_chip,
    make_tpu_pod,
)
from repro.core.masking import MaskSpec, MaskStackBudgetError
from repro.hw.device import pipelined_elapsed_seconds
from repro.hw.pod import HostLink, TpuPod, clone_device

PLANE = (8, 8)

PLACEMENTS = ["data", "chunk", "wave"]


def backend():
    return TpuBackend(make_tpu_chip(num_cores=8))


def fleet_pairs(count=7, shape=PLANE, seed=0):
    rng = np.random.default_rng(seed)
    return [
        (rng.standard_normal(shape), rng.standard_normal(shape))
        for _ in range(count)
    ]


def assert_identical(run_a, run_b, context=""):
    assert len(run_a.results) == len(run_b.results)
    for a, b in zip(run_a.results, run_b.results):
        assert np.array_equal(a.scores, b.scores), context
        assert np.array_equal(a.kernel, b.kernel), context
        assert a.residual == b.residual, context


class TestBitIdentity:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("num_chips", [1, 2, 4, 8])
    def test_scores_match_single_chip(self, placement, num_chips):
        pairs = fleet_pairs()
        reference = FleetExecutor(backend(), granularity="rows").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows",
            num_chips=num_chips, placement=placement,
        ).run(pairs)
        assert_identical(reference, sharded, f"{placement} x{num_chips}")

    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("num_chips", [1, 2, 4, 8])
    @pytest.mark.parametrize("precision", ["fp64", "bf16", "int8"])
    def test_precision_matrix_matches_single_chip(
        self, placement, num_chips, precision
    ):
        """The full identity matrix the scaling artifact certifies."""
        pairs = fleet_pairs(count=5, seed=1)
        reference = FleetExecutor(
            backend(), granularity="rows", precision=precision
        ).run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows", precision=precision,
            num_chips=num_chips, placement=placement,
        ).run(pairs)
        assert_identical(
            reference, sharded, f"{placement} x{num_chips} {precision}"
        )

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_multi_wave_and_serial(self, placement):
        pairs = fleet_pairs(count=9, seed=2)
        reference = FleetExecutor(
            backend(), granularity="columns", max_pairs_per_wave=4
        ).run(pairs)
        for pipelined in (True, False):
            sharded = FleetExecutor(
                backend(), granularity="columns", max_pairs_per_wave=4,
                num_chips=4, placement=placement,
            ).run(pairs, pipelined=pipelined)
            assert_identical(reference, sharded, f"{placement} {pipelined}")

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_elements_fast_path(self, placement):
        pairs = fleet_pairs(count=5, seed=3)
        reference = FleetExecutor(backend(), granularity="elements").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="elements",
            num_chips=4, placement=placement,
        ).run(pairs)
        assert_identical(reference, sharded, placement)

    def test_chips_exceeding_pairs(self):
        """More chips than pairs (or rows): extras stay idle, scores hold."""
        pairs = fleet_pairs(count=2, seed=4)
        reference = FleetExecutor(backend(), granularity="rows").run(pairs)
        sharded = FleetExecutor(
            backend(), granularity="rows", num_chips=8, placement="data"
        ).run(pairs)
        assert_identical(reference, sharded)


class TestPodLedger:
    def test_row_sum_identity_and_host_link_rows(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        assert isinstance(pod, TpuPod)
        assert pod.stats.seconds == pytest.approx(
            sum(pod.stats.op_seconds.values())
        )
        # Sharded host links: no fabric scatter/gather on the data path
        # any more; the asynchronous launches come back as a credit.
        assert "pod_scatter" not in pod.stats.op_seconds
        assert "pod_gather" not in pod.stats.op_seconds
        assert pod.stats.op_seconds["host_link_overlap"] < 0.0
        assert pod.stats.op_seconds["pod_compute_overlap"] < 0.0
        assert len(pod.collective_log) == 1

    def test_work_sum_preserved_across_chips(self):
        """Audit view: pod compute rows equal the sum of chip ledgers."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        for op in ("conv2d_batch", "infeed", "outfeed", "dispatch"):
            assert pod.stats.op_seconds[op] == pytest.approx(
                sum(s.op_seconds.get(op, 0.0) for s in pod.chip_stats)
            )

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_elapsed_is_stage_walk(self, placement):
        """Elapsed = the committed waves' stage model, exactly."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement=placement,
            max_pairs_per_wave=3,
        )
        executor.run(fleet_pairs())
        pod = executor.device
        shared = [w for w in pod.collective_log if w.chip_index is None]
        pinned: dict[int, list] = {}
        for w in pod.collective_log:
            if w.chip_index is not None:
                pinned.setdefault(w.chip_index, []).append(w)
        expected = (
            pipelined_elapsed_seconds([w.stage for w in shared])
            if shared
            else 0.0
        )
        if pinned:
            expected += max(
                pipelined_elapsed_seconds([w.stage for w in waves])
                for waves in pinned.values()
            )
        assert pod.stats.seconds == pytest.approx(expected)

    def test_data_wave_body_is_max_over_chips(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        (ws,) = pod.collective_log
        assert ws.body_seconds == pytest.approx(max(ws.busy_seconds))
        # One launch round trip is the wave floor; the other three are
        # hidden by the asynchronous links.
        assert ws.launched_chips == 4
        assert ws.dispatch_seconds > 0.0
        recorded = ws.dispatch_seconds * ws.launched_chips
        assert ws.launch_hidden_seconds == pytest.approx(
            recorded - ws.launch_exposed_seconds
        )

    def test_wave_never_beats_one_launch_round_trip(self):
        """Tiny waves floor at the launch latency, not below it."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=2, placement="data"
        )
        executor.run(fleet_pairs(count=2, shape=(4, 4)))
        pod = executor.device
        (ws,) = pod.collective_log
        assert ws.stage.total >= ws.dispatch_seconds

    def test_chunk_placement_streams_spectra_broadcast(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="chunk"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        assert pod.stats.op_seconds["pod_broadcast"] > 0.0
        (ws,) = pod.collective_log
        # The overlapped timeline gates the body; the root's solve span
        # is measured and carried for the audit columns.
        assert ws.gated_body_seconds is not None
        assert ws.solve_seconds > 0.0
        assert ws.body_seconds == pytest.approx(ws.gated_body_seconds)

    def test_chunk_overlap_beats_serial_solve(self):
        """The gated body must undercut solve + slowest stream in series."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="chunk"
        )
        executor.run(fleet_pairs())
        pod = executor.device
        (ws,) = pod.collective_log
        serial_body = ws.solve_seconds + max(ws.busy_seconds[1:])
        assert ws.gated_body_seconds < serial_body

    def test_wave_placement_round_robin_and_concurrent(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=2, placement="wave",
            max_pairs_per_wave=2,
        )
        executor.run(fleet_pairs(count=6, seed=7))
        pod = executor.device
        assert [w.chip_index for w in pod.collective_log] == [0, 1, 0]
        serial = sum(w.stage.total for w in pod.collective_log)
        assert pod.stats.seconds < serial

    def test_pod_faster_than_sum_of_chips(self):
        """Pod elapsed must be below total work (chips run concurrently)."""
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=4, placement="data"
        )
        executor.run(fleet_pairs(count=8))
        pod = executor.device
        work = sum(s.seconds for s in pod.chip_stats)
        assert pod.stats.seconds < work

    def test_explicit_pod_device(self):
        pod = make_tpu_pod(2, num_cores=8)
        executor = FleetExecutor(pod, granularity="rows")
        assert executor.pod is pod
        executor.run(fleet_pairs(count=3))
        assert len(pod.collective_log) == 1

    def test_num_chips_mismatch_rejected(self):
        pod = make_tpu_pod(2, num_cores=8)
        with pytest.raises(ValueError):
            FleetExecutor(pod, granularity="rows", num_chips=4)

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError):
            FleetExecutor(backend(), granularity="rows", placement="model")

    def test_single_chip_pod_matches_serial_timing(self):
        """num_chips=1 keeps the plain single-device path entirely."""
        executor = FleetExecutor(backend(), granularity="rows", num_chips=1)
        assert executor.pod is None

    def test_host_links_price_like_member_transfer(self):
        pod = make_tpu_pod(2, num_cores=8)
        assert len(pod.host_links) == 2
        link = pod.host_links[1]
        assert isinstance(link, HostLink)
        assert link.feed_seconds(4096) == pytest.approx(
            pod.devices[1].transfer_seconds(4096)
        )
        assert link.launch_latency_seconds == pytest.approx(
            pod.devices[1].launch_latency_seconds
        )
        with pytest.raises(ValueError):
            link.feed_seconds(-1)


class TestHbmCapacity:
    def test_capacity_surfaces(self):
        chip = backend()
        assert chip.hbm_capacity_bytes == 8 * chip.chip.config.core.hbm_capacity_bytes
        pod = make_tpu_pod(2, num_cores=8)
        assert pod.min_chip_hbm_bytes == pod.devices[0].hbm_capacity_bytes
        assert pod.hbm_capacity_bytes == pod.min_chip_hbm_bytes

    def test_clone_override(self):
        clone = clone_device(backend(), hbm_bytes=8192)
        assert clone.hbm_capacity_bytes == 8192
        pod = TpuPod.like(backend(), 2, hbm_bytes=8192)
        assert pod.chip_hbm_bytes == (8192, 8192)
        assert pod.min_chip_hbm_bytes == 8192

    def test_capacity_unaware_clone_rejected(self):
        from repro.hw import CpuConfig, CpuDevice

        with pytest.raises(TypeError):
            clone_device(CpuDevice(CpuConfig()), hbm_bytes=8192)

    def test_plan_consults_capacity_fallback(self):
        """A tight per-chip HBM shrinks the streamed chunk; scores hold."""
        pairs = fleet_pairs(count=4, seed=8)
        reference = FleetExecutor(backend(), granularity="rows").run(pairs)
        tight = FleetExecutor(
            backend(), granularity="rows", num_chips=2, placement="data",
            hbm_bytes=2048,  # a couple of 8x8 float rows
        )
        assert tight.effective_stack_bytes == 2048
        assert_identical(reference, tight.run(pairs))

    def test_plan_rejects_plane_exceeding_capacity(self):
        executor = FleetExecutor(
            backend(), granularity="rows", num_chips=2, hbm_bytes=256
        )
        with pytest.raises(MaskStackBudgetError):
            executor.run(fleet_pairs(count=2, seed=9))

    def test_invalid_hbm_bytes_rejected(self):
        with pytest.raises(ValueError):
            FleetExecutor(backend(), granularity="rows", hbm_bytes=0)
        with pytest.raises(ValueError):
            make_tpu_pod(2, hbm_bytes=-1)


class TestPipelineAndSchedulerKnobs:
    def test_pipeline_pod_matches_single_chip(self):
        pairs = fleet_pairs()
        reference = ExplanationPipeline(backend(), granularity="rows").run(pairs)
        pod_run = ExplanationPipeline(
            backend(), granularity="rows", num_chips=4
        ).run(pairs)
        for a, b in zip(reference.explanations, pod_run.explanations):
            assert np.array_equal(a.scores, b.scores)
            assert a.residual == b.residual
        assert pod_run.simulated_seconds > 0.0

    def test_pipeline_wave_placement_and_hbm(self):
        pairs = fleet_pairs(count=6, seed=10)
        reference = ExplanationPipeline(backend(), granularity="rows").run(pairs)
        pod_run = ExplanationPipeline(
            backend(), granularity="rows", num_chips=2, placement="wave",
            max_pairs_per_wave=2, hbm_bytes=4096,
        ).run(pairs)
        for a, b in zip(reference.explanations, pod_run.explanations):
            assert np.array_equal(a.scores, b.scores)

    def test_pipeline_rejects_pod_with_loop_method(self):
        with pytest.raises(ValueError):
            ExplanationPipeline(
                backend(), granularity="rows", method="loop", num_chips=4
            )
        with pytest.raises(ValueError):
            ExplanationPipeline(
                backend(), granularity="rows", fusion="pair", num_chips=4
            )

    def test_scheduler_explain_batch_num_chips(self):
        pairs = fleet_pairs(count=5, seed=5)
        chip = make_tpu_chip(num_cores=8)
        reference = MultiInputScheduler(chip).explain_batch(
            pairs, granularity="rows"
        )
        sharded = MultiInputScheduler(chip).explain_batch(
            pairs, granularity="rows", num_chips=4, placement="data"
        )
        assert_identical(reference, sharded)
        assert sharded.stats is not None
        assert sharded.stats.op_seconds["host_link_overlap"] < 0.0


class TestServicePod:
    def test_service_pod_results_bit_identical(self):
        from repro.serve.loop import ExplanationService
        from repro.serve.workload import Request

        def trace():
            rng = np.random.default_rng(6)
            return [
                Request(
                    request_id=i,
                    arrival_time=0.001 * i,
                    x=rng.standard_normal(PLANE),
                    y=rng.standard_normal(PLANE),
                )
                for i in range(6)
            ]

        def results(report):
            records = sorted(
                (r for r in report.ledger.records if r.status == "completed"),
                key=lambda r: r.request_id,
            )
            return [r.result for r in records]

        single = ExplanationService(
            backend(), granularity="rows", cache_max_bytes=None
        ).process(trace())
        pod = ExplanationService(
            backend(), granularity="rows", cache_max_bytes=None, num_chips=4
        ).process(trace())
        for a, b in zip(results(single), results(pod)):
            assert np.array_equal(a.scores, b.scores)
            assert a.residual == b.residual

    def test_pipeline_service_inherits_pod(self):
        pipeline = ExplanationPipeline(
            backend(), granularity="rows", num_chips=2, placement="chunk"
        )
        service = pipeline.service(cache_max_bytes=None)
        assert isinstance(service.device, TpuPod)
        assert service.device is pipeline.device
        assert service.placement == "chunk"


class TestWindowedChunks:
    """The chunk placement's masking primitive: windowed iter_chunks."""

    def test_window_identity(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.arange(64.0).reshape(PLANE)
        full = list(spec.apply_chunks(x, fill_value=0.0, chunk_rows=3))
        lo, hi = 2, 7
        windowed = list(
            spec.apply_chunks(x, fill_value=0.0, chunk_rows=3, start=lo, stop=hi)
        )
        dense_full = np.concatenate([chunk for chunk, _ in full])
        dense_window = np.concatenate([chunk for chunk, _ in windowed])
        assert np.array_equal(dense_window, dense_full[lo:hi])
        covered = [r for _, rows in windowed for r in rows]
        assert covered == list(range(lo, hi))

    def test_window_validation(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.zeros(PLANE)
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, start=-1))
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, start=5, stop=4))
        with pytest.raises(ValueError):
            list(spec.apply_chunks(x, chunk_rows=3, stop=spec.num_masks + 1))

    def test_empty_window(self):
        spec = MaskSpec.for_granularity("rows", PLANE)
        x = np.zeros(PLANE)
        assert list(spec.apply_chunks(x, chunk_rows=3, start=4, stop=4)) == []
