"""Batched occlusion engine: MaskPlan semantics and batched==looped."""

import numpy as np
import pytest

from repro.core import (
    MaskPlan,
    MaskStackBudgetError,
    TpuBackend,
    check_stack_budget,
    make_tpu_chip,
    score_plan,
)
from repro.core.pipeline import ExplanationPipeline
from repro.fft import fft_circular_convolve2d
from repro.hw import CpuDevice, GpuDevice


def fitted_setup(shape=(8, 8), seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    x[0, 0] += 5.0 * np.prod(shape) ** 0.5
    kernel = rng.standard_normal(shape)
    y = fft_circular_convolve2d(x, kernel)
    return x, kernel, y


def small_backend(num_cores=4):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


PLANS = [
    ("elements", lambda shape: MaskPlan.elements(shape)),
    ("blocks", lambda shape: MaskPlan.blocks(shape, (2, 2))),
    ("columns", lambda shape: MaskPlan.columns(shape)),
    ("rows", lambda shape: MaskPlan.rows(shape)),
]


class TestMaskPlanConstruction:
    def test_elements_plan_shape_and_labels(self):
        plan = MaskPlan.elements((3, 4))
        assert plan.num_masks == 12
        assert plan.output_shape == (3, 4)
        assert plan.plane_shape == (3, 4)
        assert plan.labels[5] == (1, 1)  # row-major ordering
        # Each mask occludes exactly its one element.
        assert plan.masks.sum() == 12
        assert plan.masks[5, 1, 1]

    def test_blocks_plan_tiles_exactly_once(self):
        plan = MaskPlan.blocks((8, 8), (2, 4))
        assert plan.output_shape == (4, 2)
        assert plan.granularity == "blocks"
        # The union of all masks covers the plane exactly once.
        np.testing.assert_array_equal(
            plan.masks.sum(axis=0), np.ones((8, 8), dtype=int)
        )

    def test_columns_and_rows_plans(self):
        cols = MaskPlan.columns((3, 5))
        assert cols.num_masks == 5
        assert cols.masks[2, :, 2].all() and cols.masks[2].sum() == 3
        rows = MaskPlan.rows((3, 5))
        assert rows.num_masks == 3
        assert rows.masks[1, 1, :].all() and rows.masks[1].sum() == 5

    def test_from_masks_wraps_single_mask(self):
        mask = np.zeros((4, 4), dtype=bool)
        mask[1, 2] = True
        plan = MaskPlan.from_masks(mask)
        assert plan.num_masks == 1
        assert plan.output_shape == (1,)
        assert plan.granularity == "custom"

    def test_for_granularity_dispatch(self):
        assert MaskPlan.for_granularity("columns", (4, 6)).num_masks == 6
        assert MaskPlan.for_granularity("blocks", (4, 4), (2, 2)).num_masks == 4
        with pytest.raises(ValueError):
            MaskPlan.for_granularity("blocks", (4, 4))
        with pytest.raises(ValueError):
            MaskPlan.for_granularity("pixels", (4, 4))

    def test_invalid_plans_rejected(self):
        with pytest.raises(ValueError):
            MaskPlan.blocks((8, 8), (3, 3))  # does not tile
        with pytest.raises(ValueError):
            MaskPlan.blocks((8, 8), (0, 2))
        with pytest.raises(ValueError):
            MaskPlan(np.zeros((4, 4), dtype=bool))  # not a stack
        with pytest.raises(ValueError):
            MaskPlan(np.zeros((2, 4, 4), dtype=bool), output_shape=(3,))
        with pytest.raises(ValueError):
            MaskPlan(np.zeros((2, 4, 4), dtype=bool), labels=((0,),))

    def test_apply_fills_masked_features(self):
        plan = MaskPlan.columns((2, 3))
        x = np.arange(6.0).reshape(2, 3)
        stacked = plan.apply(x, fill_value=-1.0)
        assert stacked.shape == (3, 2, 3)
        np.testing.assert_array_equal(stacked[1][:, 1], [-1.0, -1.0])
        np.testing.assert_array_equal(stacked[1][:, 0], x[:, 0])

    def test_apply_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MaskPlan.rows((4, 4)).apply(np.ones((5, 5)))

    def test_reshape_scores_round_trip(self):
        plan = MaskPlan.blocks((4, 4), (2, 2))
        grid = plan.reshape_scores(np.arange(4.0))
        assert grid.shape == (2, 2)
        with pytest.raises(ValueError):
            plan.reshape_scores(np.arange(5.0))


class TestBatchedEqualsLooped:
    @pytest.mark.parametrize("name,make_plan", PLANS)
    @pytest.mark.parametrize("reduction", ["l2", "l1", "mean_abs", "max_abs"])
    def test_all_granularities_and_reductions(self, name, make_plan, reduction):
        x, kernel, y = fitted_setup(seed=3)
        plan = make_plan(x.shape)
        batched = score_plan(x, kernel, y, plan, reduction=reduction, method="batched")
        looped = score_plan(x, kernel, y, plan, reduction=reduction, method="loop")
        np.testing.assert_allclose(batched, looped, atol=1e-10)
        assert batched.shape == plan.output_shape

    def test_non_zero_fill_value_under_batching(self):
        x, kernel, y = fitted_setup(seed=4)
        plan = MaskPlan.blocks(x.shape, (4, 4))
        fill = float(x.mean())
        batched = score_plan(x, kernel, y, plan, method="batched", fill_value=fill)
        looped = score_plan(x, kernel, y, plan, method="loop", fill_value=fill)
        np.testing.assert_allclose(batched, looped, atol=1e-10)
        # A non-zero baseline genuinely changes the scores.
        zero_fill = score_plan(x, kernel, y, plan, method="batched")
        assert not np.allclose(batched, zero_fill)

    def test_non_square_plane(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 8))
        kernel = rng.standard_normal((4, 8))
        y = fft_circular_convolve2d(x, kernel)
        plan = MaskPlan.columns(x.shape)
        np.testing.assert_allclose(
            score_plan(x, kernel, y, plan, method="batched"),
            score_plan(x, kernel, y, plan, method="loop"),
            atol=1e-10,
        )

    def test_device_and_pure_numpy_agree(self):
        x, kernel, y = fitted_setup(seed=6)
        plan = MaskPlan.rows(x.shape)
        pure = score_plan(x, kernel, y, plan, method="batched")
        on_cpu = score_plan(x, kernel, y, plan, method="batched", device=CpuDevice())
        np.testing.assert_allclose(pure, on_cpu, atol=1e-10)

    def test_validation(self):
        x, kernel, y = fitted_setup(seed=7)
        plan = MaskPlan.columns(x.shape)
        with pytest.raises(ValueError):
            score_plan(x, kernel, y, plan, method="magic")
        with pytest.raises(ValueError):
            score_plan(x, kernel, y, plan, reduction="median")
        with pytest.raises(ValueError):
            score_plan(x, kernel, np.ones((4, 4)), plan)
        with pytest.raises(ValueError):
            score_plan(x, kernel, y, MaskPlan.columns((4, 4)))


class TestBatchedDeviceAccounting:
    """The acceptance contract: kernel spectrum once per plan, one TPU
    dispatch per standalone plan, per-op records on eager backends."""

    def test_kernel_spectrum_computed_once_per_plan(self):
        x, kernel, y = fitted_setup()
        for device in (CpuDevice(), GpuDevice(), small_backend()):
            plan = MaskPlan.blocks(x.shape, (2, 2))
            score_plan(x, kernel, y, plan, method="batched", device=device)
            assert device.stats.op_counts["fft2"] == 1

    def test_cpu_and_gpu_record_per_op_batch_entries(self):
        x, kernel, y = fitted_setup(seed=1)
        plan = MaskPlan.blocks(x.shape, (2, 2))
        for device in (CpuDevice(), GpuDevice()):
            score_plan(x, kernel, y, plan, method="batched", device=device)
            counts = device.stats.op_counts
            assert counts["fft2_batch"] == plan.num_masks
            assert counts["ifft2_batch"] == plan.num_masks
            assert counts["hadamard_mul_batch"] == plan.num_masks
            assert "dispatch" not in counts

    def test_tpu_standalone_plan_records_one_dispatch(self):
        x, kernel, y = fitted_setup(seed=2)
        backend = small_backend()
        plan = MaskPlan.columns(x.shape)
        score_plan(x, kernel, y, plan, method="batched", device=backend)
        counts = backend.stats.op_counts
        assert counts["dispatch"] == 1
        assert counts["conv2d_batch"] == 1
        assert counts["infeed"] == 1 and counts["outfeed"] == 1
        assert "fft2_batch" not in counts

    def test_tpu_plan_inside_program_adds_no_dispatch(self):
        x, kernel, y = fitted_setup(seed=3)
        backend = small_backend()
        plan = MaskPlan.columns(x.shape)
        with backend.program(infeed_bytes=x.nbytes):
            score_plan(x, kernel, y, plan, method="batched", device=backend)
        counts = backend.stats.op_counts
        assert counts["dispatch"] == 1  # the program's own dispatch only
        assert counts["conv2d_batch"] == 1

    def test_loop_mode_still_pays_per_mask_round_trips(self):
        x, kernel, y = fitted_setup(seed=4)
        backend = small_backend()
        plan = MaskPlan.columns(x.shape)
        score_plan(x, kernel, y, plan, method="loop", device=backend)
        assert backend.stats.op_counts["conv_round_trip"] == plan.num_masks

    def test_batched_cheaper_than_looped_on_every_backend(self):
        for device_factory in (CpuDevice, GpuDevice, small_backend):
            x, kernel, y = fitted_setup(seed=5)
            plan = MaskPlan.elements(x.shape)
            looped_device = device_factory()
            score_plan(x, kernel, y, plan, method="loop", device=looped_device)
            batched_device = device_factory()
            score_plan(x, kernel, y, plan, method="batched", device=batched_device)
            assert batched_device.stats.seconds < looped_device.stats.seconds

    def test_batch_conv_seconds_validation(self):
        with pytest.raises(ValueError):
            CpuDevice().batch_conv_seconds(0, 8, 8)
        with pytest.raises(ValueError):
            small_backend().batch_conv_seconds(-1, 8, 8)

    def test_conv2d_circular_batch_validation(self):
        device = CpuDevice()
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(np.ones((4, 4)), np.ones((4, 4)))
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(np.ones((2, 4, 4)), np.ones((5, 5)))

    def test_conv2d_circular_batch_kernel_stack_matches_per_kernel(self):
        """The wave form: per-row kernels, bit-identical to convolving
        each row against its own kernel separately."""
        rng = np.random.default_rng(12)
        stack = rng.standard_normal((5, 6, 6))
        kernels = rng.standard_normal((2, 6, 6))
        row_kernel = np.array([0, 1, 1, 0, 1])
        device = CpuDevice()
        fused = device.conv2d_circular_batch(stack, kernels, row_kernel=row_kernel)
        for row, (plane, which) in enumerate(zip(stack, row_kernel)):
            np.testing.assert_array_equal(
                fused[row],
                fft_circular_convolve2d(plane, kernels[which]),
            )

    def test_kernel_stack_requires_row_map(self):
        device = CpuDevice()
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(np.ones((2, 4, 4)), np.ones((2, 4, 4)))
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(
                np.ones((2, 4, 4)), np.ones((4, 4)), row_kernel=np.array([0, 0])
            )
        with pytest.raises(ValueError):
            device.conv2d_circular_batch(
                np.ones((2, 4, 4)), np.ones((2, 4, 4)), row_kernel=np.array([0, 5])
            )

    def test_kernel_spectrum_batch_accounting(self):
        """Eager backends record one fft2 launch per kernel; the TPU
        records one fused spectrum-batch program."""
        stack = np.ones((3, 4, 4))
        kernels = np.ones((3, 4, 4))
        rows = np.arange(3)
        cpu = CpuDevice()
        cpu.conv2d_circular_batch(stack, kernels, row_kernel=rows)
        assert cpu.stats.op_counts["fft2_kernel"] == 3
        tpu = small_backend()
        tpu.conv2d_circular_batch(stack, kernels, row_kernel=rows)
        assert tpu.stats.op_counts["fft2_kernel_batch"] == 1
        assert tpu.stats.op_seconds["fft2_kernel_batch"] == pytest.approx(
            tpu.kernel_spectrum_batch_seconds(3, 4, 4)
        )

    def test_kernel_spectrum_batch_seconds_validation(self):
        with pytest.raises(ValueError):
            CpuDevice().kernel_spectrum_batch_seconds(0, 4, 4)
        with pytest.raises(ValueError):
            small_backend().kernel_spectrum_batch_seconds(-1, 4, 4)

    def test_conv2d_circular_batch_matches_looped_convolutions(self):
        rng = np.random.default_rng(8)
        stack = rng.standard_normal((5, 6, 6))
        kernel = rng.standard_normal((6, 6))
        device = CpuDevice()
        batched = device.conv2d_circular_batch(stack, kernel)
        for plane, expected in zip(stack, batched):
            np.testing.assert_allclose(
                fft_circular_convolve2d(plane, kernel), expected, atol=1e-10
            )


class TestPipelineMethods:
    @pytest.mark.parametrize("granularity,kwargs", [
        ("blocks", {"block_shape": (2, 2)}),
        ("columns", {}),
        ("rows", {}),
        ("elements", {}),
    ])
    def test_batched_and_loop_pipelines_agree(self, granularity, kwargs):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((8, 8))
        x[0, 0] += 40.0
        kernel = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, kernel)
        runs = {}
        for method in ("batched", "loop"):
            pipeline = ExplanationPipeline(
                CpuDevice(), granularity=granularity, eps=1e-8,
                method=method, **kwargs,
            )
            runs[method] = pipeline.run([(x, y)])
        np.testing.assert_allclose(
            runs["batched"].explanations[0].scores,
            runs["loop"].explanations[0].scores,
            atol=1e-8,
        )

    def test_batched_pipeline_simulated_faster(self):
        rng = np.random.default_rng(10)
        x = rng.standard_normal((16, 16))
        x[0, 0] += 80.0
        kernel = rng.standard_normal((16, 16))
        y = fft_circular_convolve2d(x, kernel)
        seconds = {}
        for method in ("batched", "loop"):
            pipeline = ExplanationPipeline(
                small_backend(), granularity="blocks", block_shape=(2, 2),
                eps=1e-8, method=method,
            )
            seconds[method] = pipeline.run([(x, y)]).simulated_seconds
        assert seconds["batched"] < seconds["loop"]

    def test_tpu_batched_pipeline_one_dispatch_per_pair(self):
        rng = np.random.default_rng(11)
        pairs = []
        for _ in range(2):
            x = rng.standard_normal((8, 8))
            x[0, 0] += 40.0
            kernel = rng.standard_normal((8, 8))
            pairs.append((x, fft_circular_convolve2d(x, kernel)))
        pipeline = ExplanationPipeline(
            small_backend(), granularity="blocks", block_shape=(4, 4), eps=1e-8,
            fusion="pair",
        )
        run = pipeline.run(pairs)
        # One program dispatch per pair; the batched plan adds none, and
        # only the residual convolution still pays a host round trip.
        # (Wave fusion collapses both to one per wave -- see test_fleet.)
        assert run.stats.op_counts["dispatch"] == 2
        assert run.stats.op_counts["conv_round_trip"] == 2

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ExplanationPipeline(CpuDevice(), granularity="columns", method="magic")


class TestMaskPlanConcat:
    def test_concat_stacks_masks_in_plan_order(self):
        cols = MaskPlan.columns((4, 4))
        rows = MaskPlan.rows((4, 4))
        fused = MaskPlan.concat([cols, rows])
        assert fused.num_masks == 8
        assert fused.granularity == "concat"
        assert fused.output_shape == (8,)
        np.testing.assert_array_equal(fused.masks[:4], cols.masks)
        np.testing.assert_array_equal(fused.masks[4:], rows.masks)

    def test_concat_prefixes_labels_with_plan_index(self):
        fused = MaskPlan.concat([MaskPlan.columns((2, 3)), MaskPlan.columns((2, 3))])
        assert fused.labels[0] == (0, 0)
        assert fused.labels[3] == (1, 0)
        assert fused.labels[5] == (1, 2)

    def test_concat_rejects_mixed_planes(self):
        with pytest.raises(ValueError):
            MaskPlan.concat([MaskPlan.columns((2, 2)), MaskPlan.columns((4, 4))])

    def test_concat_rejects_empty(self):
        with pytest.raises(ValueError):
            MaskPlan.concat([])

    def test_concat_scores_equal_individual_plans(self):
        x, kernel, y = fitted_setup()
        cols = MaskPlan.columns(x.shape)
        rows = MaskPlan.rows(x.shape)
        fused_scores = score_plan(x, kernel, y, MaskPlan.concat([cols, rows]))
        np.testing.assert_array_equal(
            fused_scores[:8], score_plan(x, kernel, y, cols)
        )
        np.testing.assert_array_equal(
            fused_scores[8:], score_plan(x, kernel, y, rows)
        )


class TestStackBudget:
    def test_nbytes_prices_the_float_stack(self):
        plan = MaskPlan.columns((4, 8))
        assert plan.nbytes == 8 * 4 * 8 * 8  # num_masks * M * N * float64

    def test_check_stack_budget_passes_and_raises(self):
        check_stack_budget(100, 100)
        check_stack_budget(10**12, None)  # None disables the guard
        with pytest.raises(MaskStackBudgetError, match="method='loop'"):
            check_stack_budget(101, 100)

    def test_score_plan_honors_budget(self):
        x, kernel, y = fitted_setup()
        plan = MaskPlan.columns(x.shape)
        with pytest.raises(MaskStackBudgetError):
            score_plan(x, kernel, y, plan, max_stack_bytes=plan.nbytes - 1)
        # Loop mode streams and never materializes the stack.
        scores = score_plan(
            x, kernel, y, plan, method="loop", max_stack_bytes=plan.nbytes - 1
        )
        assert scores.shape == (8,)

    def test_pipeline_budget_points_at_loop(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 8))
        y = fft_circular_convolve2d(x, rng.standard_normal((8, 8)))
        for fusion in ("pair", "wave"):
            pipeline = ExplanationPipeline(
                CpuDevice(), granularity="columns", fusion=fusion,
                max_stack_bytes=64,
            )
            with pytest.raises(MaskStackBudgetError, match="loop"):
                pipeline.run([(x, y)])
