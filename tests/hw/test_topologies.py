"""Torus topology and HBM capacity failure injection."""

import numpy as np
import pytest

from repro.hw import (
    Interconnect,
    InterconnectConfig,
    MemoryCapacityError,
    MxuConfig,
    TpuCore,
    TpuCoreConfig,
)
from repro.hw.interconnect import _near_square_side


class TestNearSquareSide:
    def test_perfect_squares(self):
        assert _near_square_side(16) == 4
        assert _near_square_side(64) == 8

    def test_rectangles(self):
        assert _near_square_side(128) == 8  # 8 x 16 grid
        assert _near_square_side(12) == 3  # 3 x 4 grid

    def test_primes_degenerate_to_line(self):
        assert _near_square_side(7) == 1

    def test_one(self):
        assert _near_square_side(1) == 1


class TestTorusAllReduce:
    def fabric(self, topology, latency=1e-6, bandwidth=496e9):
        return Interconnect(
            InterconnectConfig(
                link_bandwidth_bytes_per_sec=bandwidth,
                link_latency_sec=latency,
                topology=topology,
            )
        )

    def test_torus_beats_ring_at_high_core_counts(self):
        """2*sqrt(p) hops vs 2*p hops: the latency term's whole point."""
        nbytes = 1 << 20
        ring = self.fabric("ring").all_reduce_seconds(nbytes, 128)
        torus = self.fabric("torus2d").all_reduce_seconds(nbytes, 128)
        assert torus < ring

    def test_ring_competitive_at_low_core_counts(self):
        nbytes = 64 << 20  # large payload: bandwidth dominated
        ring = self.fabric("ring", latency=0.0).all_reduce_seconds(nbytes, 4)
        torus = self.fabric("torus2d", latency=0.0).all_reduce_seconds(nbytes, 4)
        # With zero latency both are within a small factor.
        assert torus < 2.0 * ring

    def test_torus_degenerate_cases(self):
        fabric = self.fabric("torus2d")
        assert fabric.all_reduce_seconds(1000, 1) == 0.0
        assert fabric.all_reduce_seconds(0, 16) == 0.0

    def test_prime_core_count_falls_back_to_line(self):
        fabric = self.fabric("torus2d")
        # 7 cores -> 1 x 7 grid: one ring phase over 7 plus a no-op.
        prime = fabric.all_reduce_seconds(1 << 20, 7)
        ring = self.fabric("ring").all_reduce_seconds(1 << 20, 7)
        assert prime == pytest.approx(ring, rel=0.01)

    def test_latency_scaling(self):
        """Torus latency term ~ 2*(2*(sqrt(p)-1)) hops."""
        fabric = self.fabric("torus2d", latency=1e-3, bandwidth=1e15)
        t = fabric.all_reduce_seconds(8, 16)  # negligible transfer
        assert t == pytest.approx(2 * (2 * 3) * 1e-3, rel=0.01)


class TestHbmCapacityInjection:
    def tiny_core(self, capacity=1 << 16, precision="fp32"):
        return TpuCore(
            TpuCoreConfig(
                mxu=MxuConfig(rows=8, cols=8, precision=precision),
                hbm_capacity_bytes=capacity,
            )
        )

    def test_oversized_working_set_raises(self):
        core = self.tiny_core(capacity=1 << 10)  # 1 KiB slice
        with pytest.raises(MemoryCapacityError, match="working set"):
            core.matmul(np.ones((64, 64)), np.ones((64, 64)))

    def test_error_names_shape_and_precision(self):
        core = self.tiny_core(capacity=1 << 10)
        with pytest.raises(MemoryCapacityError, match="64x64.*fp32"):
            core.matmul(np.ones((64, 64)), np.ones((64, 64)))

    def test_fitting_working_set_passes(self):
        core = self.tiny_core(capacity=1 << 20)
        result = core.matmul(np.ones((8, 8)), np.ones((8, 8)))
        np.testing.assert_allclose(result, np.full((8, 8), 8.0), atol=1e-9)

    def test_complex_operands_double_the_footprint(self):
        # Real fits, complex (two planes) does not.
        capacity = 4 * 3 * 24 * 24 + 100
        core = self.tiny_core(capacity=capacity)
        core.matmul(np.ones((24, 24)), np.ones((24, 24)))  # fits
        with pytest.raises(MemoryCapacityError):
            core.matmul(np.ones((24, 24)) + 0j, np.ones((24, 24)))

    def test_int8_mode_fits_more(self):
        capacity = 3 * 32 * 32 + 10  # 1 byte per element
        int8_core = self.tiny_core(capacity=capacity, precision="int8")
        int8_core.matmul(np.ones((32, 32)), np.ones((32, 32)))  # fits
        fp32_core = self.tiny_core(capacity=capacity, precision="fp32")
        with pytest.raises(MemoryCapacityError):
            fp32_core.matmul(np.ones((32, 32)), np.ones((32, 32)))
