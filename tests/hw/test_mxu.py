"""MXU tiling: functional agreement between exact and analytic paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Mxu, MxuConfig, matmul_cycles, streaming_cycles


def small_mxu(rows=8, cols=8, precision="fp32"):
    return Mxu(MxuConfig(rows=rows, cols=cols, precision=precision))


class TestFunctional:
    @pytest.mark.parametrize("shape", [(4, 4, 4), (8, 8, 8), (3, 8, 5), (16, 24, 10)])
    def test_fp32_matches_numpy(self, shape):
        m, k, n = shape
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        product, _ = small_mxu().matmul(a, b)
        np.testing.assert_allclose(product, a @ b, atol=1e-9)

    def test_int8_matches_quantized_oracle(self):
        from repro.hw import quantized_matmul

        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        product, _ = small_mxu(precision="int8").matmul(a, b)
        np.testing.assert_allclose(product, quantized_matmul(a, b, bits=8), atol=1e-12)

    def test_bf16_close_to_exact(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        product, _ = small_mxu(precision="bf16").matmul(a, b)
        assert np.max(np.abs(product - a @ b)) < 0.1

    @pytest.mark.parametrize("shape", [(4, 4, 4), (5, 12, 7), (10, 20, 9), (3, 17, 11)])
    @pytest.mark.parametrize("precision", ["fp32", "int8"])
    def test_exact_tiled_path_matches_numeric_path(self, shape, precision):
        """The cycle-level systolic engine, tile by tile, must reproduce
        the quantized/full-precision oracle exactly."""
        m, k, n = shape
        rng = np.random.default_rng(m + k + n)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        mxu = small_mxu(precision=precision)
        exact, _ = mxu.matmul(a, b, exact=True)
        numeric, _ = mxu.matmul(a, b, exact=False)
        np.testing.assert_allclose(exact, numeric, atol=1e-9)

    def test_complex_operands_rejected(self):
        with pytest.raises(TypeError):
            small_mxu().matmul(np.ones((2, 2)) + 1j, np.ones((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            small_mxu().matmul(np.ones((2, 3)), np.ones((4, 2)))
        with pytest.raises(ValueError):
            small_mxu().matmul(np.ones(3), np.ones((3, 3)))


class TestCycleModel:
    def test_single_tile_matches_systolic_closed_form(self):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        stats = matmul_cycles(4, 8, 8, config)
        assert stats.tiles == 1
        # One exposed weight load + one streaming pass.
        assert stats.cycles == 8 + streaming_cycles(4, 8, 8)

    def test_tile_count(self):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        assert matmul_cycles(4, 16, 16, config).tiles == 4
        assert matmul_cycles(4, 17, 8, config).tiles == 3
        assert matmul_cycles(4, 8, 8, config).tiles == 1

    def test_weight_loads_hide_behind_long_streams(self):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        long_stream = matmul_cycles(64, 16, 16, config)
        assert long_stream.hidden_weight_load_cycles == (long_stream.tiles - 1) * 8

    def test_cycles_scale_with_tiles(self):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        small = matmul_cycles(16, 8, 8, config).cycles
        big = matmul_cycles(16, 32, 32, config).cycles
        assert big > 10 * small  # 16 tiles vs 1

    def test_fp32_slower_than_int8(self):
        config8 = MxuConfig(rows=8, cols=8, precision="int8")
        config32 = MxuConfig(rows=8, cols=8, precision="fp32")
        assert (
            matmul_cycles(32, 8, 8, config32).cycles
            > matmul_cycles(32, 8, 8, config8).cycles
        )

    def test_utilization_increases_with_m(self):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        u_small = matmul_cycles(2, 8, 8, config).utilization(config)
        u_big = matmul_cycles(256, 8, 8, config).utilization(config)
        assert u_big > u_small
        assert u_big <= 1.0

    def test_paper_mxu_peak(self):
        config = MxuConfig()  # 256x256 int8
        assert config.macs_per_cycle == 65536

    def test_invalid_dimensions_raise(self):
        with pytest.raises(ValueError):
            matmul_cycles(0, 4, 4, MxuConfig(rows=8, cols=8))

    def test_invalid_geometry_raises(self):
        with pytest.raises(ValueError):
            MxuConfig(rows=0, cols=8)
        with pytest.raises(ValueError):
            MxuConfig(rows=8, cols=8, precision="int4")


class TestProperties:
    @given(
        m=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=20),
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_equals_numeric_everywhere(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        mxu = small_mxu(rows=4, cols=4)
        exact, stats_exact = mxu.matmul(a, b, exact=True)
        numeric, stats_numeric = mxu.matmul(a, b, exact=False)
        np.testing.assert_allclose(exact, numeric, atol=1e-9)
        assert stats_exact.cycles == stats_numeric.cycles

    @given(
        m=st.integers(min_value=1, max_value=64),
        k=st.integers(min_value=1, max_value=64),
        n=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_cycle_model_monotone_in_every_dimension(self, m, k, n):
        config = MxuConfig(rows=8, cols=8, precision="int8")
        base = matmul_cycles(m, k, n, config).cycles
        assert matmul_cycles(m + 8, k, n, config).cycles >= base
        assert matmul_cycles(m, k + 8, n, config).cycles >= base
        assert matmul_cycles(m, k, n + 8, config).cycles >= base
