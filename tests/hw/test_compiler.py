"""Op-graph lowering and fused-vs-eager program pricing."""

import pytest

from repro.hw import Op, OpGraph, Opcode, compiled_seconds, eager_seconds, lower, solve_graph
from repro.hw.mxu import MxuConfig
from repro.hw.tpu import TpuCoreConfig


def small_core():
    return TpuCoreConfig(mxu=MxuConfig(rows=8, cols=8, precision="bf16"))


class TestOpValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Op("conv3d")

    def test_matmul_needs_geometry(self):
        with pytest.raises(ValueError):
            Op("matmul", m=0, k=4, n=4)

    def test_hadamard_needs_elements(self):
        with pytest.raises(ValueError):
            Op("hadamard", elements=0)

    def test_transfers_need_bytes(self):
        with pytest.raises(ValueError):
            Op("read_host", nbytes=0)


class TestLowering:
    def test_matmul_expands_to_tiles(self):
        graph = OpGraph().matmul(4, 16, 16, name="mm")
        program = lower(graph, small_core(), host_bandwidth_bytes_per_sec=1e9)
        histogram = program.opcode_histogram()
        assert histogram[Opcode.LOAD_WEIGHTS] == 4  # 2 k-tiles x 2 n-tiles
        assert histogram[Opcode.MATMUL] == 4

    def test_complex_matmul_quadruples_passes(self):
        real = lower(OpGraph().matmul(4, 8, 8), small_core(), 1e9)
        cplx = lower(
            OpGraph().matmul(4, 8, 8, complex_values=True), small_core(), 1e9
        )
        assert len(cplx) == 4 * len(real)

    def test_host_ops_priced_in_seconds(self):
        graph = OpGraph().read_host(1_000_000, name="in")
        program = lower(graph, small_core(), host_bandwidth_bytes_per_sec=1e6)
        instruction = program.instructions[0]
        assert instruction.opcode == Opcode.READ_HOST
        assert instruction.seconds == pytest.approx(1.0)

    def test_hadamard_and_transpose_cycles(self):
        graph = OpGraph().hadamard(1024, name="h").transpose(1024, name="t")
        program = lower(graph, small_core(), 1e9)
        kinds = [i.opcode for i in program.instructions]
        assert kinds == [Opcode.HADAMARD, Opcode.TRANSPOSE]
        assert all(i.cycles >= 1 for i in program.instructions)

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            lower(OpGraph().hadamard(4), small_core(), 0.0)


class TestSolveGraph:
    def test_structure(self):
        graph = solve_graph(size=8, pairs=1)
        kinds = [op.kind for op in graph.ops]
        assert kinds.count("matmul") == 6  # 2 per transform x 3 transforms
        assert kinds.count("read_host") == 1
        assert kinds.count("write_host") == 1
        assert kinds.count("hadamard") == 4

    def test_pairs_scale_the_graph(self):
        one = solve_graph(size=8, pairs=1)
        three = solve_graph(size=8, pairs=3)
        assert len(three) > 2 * len(one)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_graph(size=0)
        with pytest.raises(ValueError):
            solve_graph(size=8, pairs=0)


class TestFusedVsEager:
    def test_fused_program_is_cheaper(self):
        """The paper's structural claim, quantified: one dispatched
        program with overlap beats per-op dispatches."""
        graph = solve_graph(size=64)
        core = small_core()
        fused = compiled_seconds(graph, core, 1e9, dispatch_latency_sec=1e-3)
        eager = eager_seconds(graph, core, 1e9, dispatch_latency_sec=1e-3)
        assert fused < eager
        # With ~12 ops the dispatch saving alone is ~11 ms.
        assert eager - fused > 10e-3

    def test_fused_advantage_grows_with_pair_count(self):
        core = small_core()
        gap_one = eager_seconds(
            solve_graph(64, pairs=1), core, 1e9, 1e-3
        ) - compiled_seconds(solve_graph(64, pairs=1), core, 1e9, 1e-3)
        gap_four = eager_seconds(
            solve_graph(64, pairs=4), core, 1e9, 1e-3
        ) - compiled_seconds(solve_graph(64, pairs=4), core, 1e9, 1e-3)
        assert gap_four > gap_one

    def test_zero_dispatch_still_benefits_from_overlap(self):
        graph = solve_graph(size=64)
        core = small_core()
        fused = compiled_seconds(graph, core, 1e6, dispatch_latency_sec=0.0)
        eager = eager_seconds(graph, core, 1e6, dispatch_latency_sec=0.0)
        assert fused <= eager
