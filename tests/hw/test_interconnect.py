"""Ring all-reduce cost model (the paper's tf.cross_replica_sum)."""

import pytest

from repro.hw import Interconnect, InterconnectConfig


def fabric(bandwidth=100.0, latency=0.0, topology="ring"):
    return Interconnect(
        InterconnectConfig(
            link_bandwidth_bytes_per_sec=bandwidth,
            link_latency_sec=latency,
            topology=topology,
        )
    )


class TestAllReduce:
    def test_single_core_is_free(self):
        assert fabric().all_reduce_seconds(1000, 1) == 0.0

    def test_zero_bytes_is_free(self):
        assert fabric().all_reduce_seconds(0, 8) == 0.0

    def test_two_core_formula(self):
        # p=2: 2*(p-1)=2 steps of nbytes/2 each -> nbytes/bw total.
        assert fabric(bandwidth=100.0).all_reduce_seconds(100, 2) == pytest.approx(1.0)

    def test_bandwidth_term_saturates_with_cores(self):
        """Ring all-reduce moves 2*(p-1)/p * nbytes per link: the per-core
        traffic approaches 2x payload as p grows, it does not diverge."""
        t8 = fabric(bandwidth=100.0).all_reduce_seconds(100, 8)
        t128 = fabric(bandwidth=100.0).all_reduce_seconds(100, 128)
        assert t8 < t128 < 2.0 * 100 / 100.0 + 1e-9

    def test_latency_term_grows_linearly_with_cores(self):
        no_latency = fabric(latency=0.0).all_reduce_seconds(100, 16)
        with_latency = fabric(latency=0.01).all_reduce_seconds(100, 16)
        assert with_latency == pytest.approx(no_latency + 2 * 15 * 0.01)

    def test_all_to_all_faster_than_ring(self):
        ring = fabric(latency=1e-3).all_reduce_seconds(1000, 16)
        direct = fabric(latency=1e-3, topology="all-to-all").all_reduce_seconds(1000, 16)
        assert direct < ring

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fabric().all_reduce_seconds(-1, 4)
        with pytest.raises(ValueError):
            fabric().all_reduce_seconds(10, 0)


class TestOtherCollectives:
    def test_all_gather_zero_cases(self):
        assert fabric().all_gather_seconds(0, 8) == 0.0
        assert fabric().all_gather_seconds(100, 1) == 0.0

    def test_all_gather_scales_with_shards(self):
        t4 = fabric(bandwidth=10.0).all_gather_seconds(10, 4)
        t8 = fabric(bandwidth=10.0).all_gather_seconds(10, 8)
        assert t8 > t4

    def test_broadcast_pipeline(self):
        t = fabric(bandwidth=100.0, latency=0.01).broadcast_seconds(200, 4)
        assert t == pytest.approx(2.0 + 3 * 0.01)

    def test_point_to_point(self):
        t = fabric(bandwidth=100.0, latency=0.5).point_to_point_seconds(100)
        assert t == pytest.approx(0.5 + 1.0)
        assert fabric().point_to_point_seconds(0) == 0.0


class TestConfigValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectConfig(link_bandwidth_bytes_per_sec=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            InterconnectConfig(link_latency_sec=-1)

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            InterconnectConfig(topology="torus")
