"""Ring all-reduce cost model (the paper's tf.cross_replica_sum)."""

import pytest

from repro.hw import Interconnect, InterconnectConfig


def fabric(bandwidth=100.0, latency=0.0, topology="ring"):
    return Interconnect(
        InterconnectConfig(
            link_bandwidth_bytes_per_sec=bandwidth,
            link_latency_sec=latency,
            topology=topology,
        )
    )


class TestAllReduce:
    def test_single_core_is_free(self):
        assert fabric().all_reduce_seconds(1000, 1) == 0.0

    def test_zero_bytes_is_free(self):
        assert fabric().all_reduce_seconds(0, 8) == 0.0

    def test_two_core_formula(self):
        # p=2: 2*(p-1)=2 steps of nbytes/2 each -> nbytes/bw total.
        assert fabric(bandwidth=100.0).all_reduce_seconds(100, 2) == pytest.approx(1.0)

    def test_bandwidth_term_saturates_with_cores(self):
        """Ring all-reduce moves 2*(p-1)/p * nbytes per link: the per-core
        traffic approaches 2x payload as p grows, it does not diverge."""
        t8 = fabric(bandwidth=100.0).all_reduce_seconds(100, 8)
        t128 = fabric(bandwidth=100.0).all_reduce_seconds(100, 128)
        assert t8 < t128 < 2.0 * 100 / 100.0 + 1e-9

    def test_latency_term_grows_linearly_with_cores(self):
        no_latency = fabric(latency=0.0).all_reduce_seconds(100, 16)
        with_latency = fabric(latency=0.01).all_reduce_seconds(100, 16)
        assert with_latency == pytest.approx(no_latency + 2 * 15 * 0.01)

    def test_all_to_all_faster_than_ring(self):
        ring = fabric(latency=1e-3).all_reduce_seconds(1000, 16)
        direct = fabric(latency=1e-3, topology="all-to-all").all_reduce_seconds(1000, 16)
        assert direct < ring

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            fabric().all_reduce_seconds(-1, 4)
        with pytest.raises(ValueError):
            fabric().all_reduce_seconds(10, 0)

    @pytest.mark.parametrize("topology", ["ring", "torus2d", "all-to-all"])
    def test_monotone_in_bytes(self, topology):
        f = fabric(latency=1e-4, topology=topology)
        times = [f.all_reduce_seconds(nbytes, 16) for nbytes in (0, 100, 1000, 10_000)]
        assert times == sorted(times)
        assert times[0] == 0.0 and times[-1] > times[1]

    def test_latency_ordering_at_p16(self):
        """At fixed payload: all-to-all <= torus2d <= ring latency terms.

        The bandwidth term is held at ~0 (huge links), isolating the hop
        counts: 2 vs 2*(4-1)*2=12 vs 2*(16-1)=30 latency steps at p=16.
        """
        kwargs = dict(bandwidth=1e18, latency=1e-3)
        direct = fabric(topology="all-to-all", **kwargs).all_reduce_seconds(1 << 20, 16)
        torus = fabric(topology="torus2d", **kwargs).all_reduce_seconds(1 << 20, 16)
        ring = fabric(topology="ring", **kwargs).all_reduce_seconds(1 << 20, 16)
        assert direct == pytest.approx(2 * 1e-3)
        assert torus == pytest.approx(12 * 1e-3)
        assert ring == pytest.approx(30 * 1e-3)
        assert direct < torus < ring

    @pytest.mark.parametrize("p", [2, 3, 5, 7, 11, 13])
    def test_torus2d_prime_cores_fall_back_to_ring(self, p):
        """A prime core count has no 2-D grid; torus2d must price as ring
        rather than degenerate through a 1-wide phase."""
        torus = fabric(latency=1e-3, topology="torus2d").all_reduce_seconds(999, p)
        ring = fabric(latency=1e-3, topology="ring").all_reduce_seconds(999, p)
        assert torus == ring
        assert torus > 0.0

    @pytest.mark.parametrize("topology", ["ring", "torus2d", "all-to-all"])
    def test_zero_and_one_core_edges(self, topology):
        f = fabric(latency=1e-3, topology=topology)
        assert f.all_reduce_seconds(0, 16) == 0.0
        assert f.all_reduce_seconds(1 << 20, 1) == 0.0


class TestOtherCollectives:
    def test_all_gather_zero_cases(self):
        assert fabric().all_gather_seconds(0, 8) == 0.0
        assert fabric().all_gather_seconds(100, 1) == 0.0

    def test_all_gather_scales_with_shards(self):
        t4 = fabric(bandwidth=10.0).all_gather_seconds(10, 4)
        t8 = fabric(bandwidth=10.0).all_gather_seconds(10, 8)
        assert t8 > t4

    def test_all_gather_monotone_in_bytes(self):
        f = fabric(bandwidth=10.0, latency=1e-4)
        times = [f.all_gather_seconds(nbytes, 8) for nbytes in (0, 10, 100, 1000)]
        assert times == sorted(times) and times[-1] > times[0]

    def test_broadcast_monotone_in_bytes_and_cores(self):
        f = fabric(bandwidth=10.0, latency=1e-4)
        assert f.broadcast_seconds(100, 8) > f.broadcast_seconds(10, 8)
        assert f.broadcast_seconds(100, 8) > f.broadcast_seconds(100, 4)
        assert f.broadcast_seconds(100, 1) == 0.0
        assert f.broadcast_seconds(0, 8) == 0.0

    def test_broadcast_pipeline(self):
        t = fabric(bandwidth=100.0, latency=0.01).broadcast_seconds(200, 4)
        assert t == pytest.approx(2.0 + 3 * 0.01)

    def test_point_to_point(self):
        t = fabric(bandwidth=100.0, latency=0.5).point_to_point_seconds(100)
        assert t == pytest.approx(0.5 + 1.0)
        assert fabric().point_to_point_seconds(0) == 0.0


class TestConfigValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectConfig(link_bandwidth_bytes_per_sec=0)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            InterconnectConfig(link_latency_sec=-1)

    def test_bad_topology(self):
        with pytest.raises(ValueError):
            InterconnectConfig(topology="torus")
