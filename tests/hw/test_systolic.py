"""Cycle-level systolic array: exactness and timing facts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import SystolicArray, streaming_cycles


class TestExactness:
    @pytest.mark.parametrize("rows,cols", [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4)])
    def test_square_streaming_matches_numpy(self, rows, cols):
        rng = np.random.default_rng(rows * 10 + cols)
        activations = rng.standard_normal((rows, rows))
        weights = rng.standard_normal((rows, cols))
        result = SystolicArray(rows=rows, cols=cols).matmul(activations, weights)
        np.testing.assert_allclose(result.output, activations @ weights, atol=1e-10)

    @pytest.mark.parametrize("m", [1, 2, 3, 7, 16, 33])
    def test_arbitrary_row_counts(self, m):
        rng = np.random.default_rng(m)
        activations = rng.standard_normal((m, 8))
        weights = rng.standard_normal((8, 8))
        result = SystolicArray(rows=8, cols=8).matmul(activations, weights)
        np.testing.assert_allclose(result.output, activations @ weights, atol=1e-10)

    def test_integer_inputs_accumulate_exactly(self):
        rng = np.random.default_rng(5)
        activations = rng.integers(-127, 127, size=(12, 16)).astype(np.int64)
        weights = rng.integers(-127, 127, size=(16, 8)).astype(np.int64)
        result = SystolicArray(rows=16, cols=8).matmul(activations, weights)
        np.testing.assert_array_equal(result.output, activations @ weights)

    def test_identity_weights_pass_activations_through(self):
        activations = np.arange(16.0).reshape(4, 4)
        result = SystolicArray(rows=4, cols=4).matmul(activations, np.eye(4))
        np.testing.assert_allclose(result.output, activations, atol=1e-12)

    def test_reuse_without_reloading_weights(self):
        """Weight-stationary reuse: stream twice against one load."""
        rng = np.random.default_rng(6)
        array = SystolicArray(rows=4, cols=4)
        weights = rng.standard_normal((4, 4))
        array.load_weights(weights)
        a1 = rng.standard_normal((5, 4))
        a2 = rng.standard_normal((3, 4))
        np.testing.assert_allclose(array.stream(a1).output, a1 @ weights, atol=1e-10)
        np.testing.assert_allclose(array.stream(a2).output, a2 @ weights, atol=1e-10)


class TestTiming:
    def test_streaming_cycles_closed_form(self):
        # m + R + C - 2, straight from the wavefront schedule.
        assert streaming_cycles(1, 1, 1) == 1
        assert streaming_cycles(4, 4, 4) == 10
        assert streaming_cycles(256, 256, 256) == 766

    @pytest.mark.parametrize("m,rows,cols", [(1, 1, 1), (3, 4, 5), (16, 8, 8), (5, 2, 9)])
    def test_simulator_matches_closed_form(self, m, rows, cols):
        rng = np.random.default_rng(0)
        activations = rng.standard_normal((m, rows))
        weights = rng.standard_normal((rows, cols))
        result = SystolicArray(rows=rows, cols=cols).matmul(activations, weights)
        assert result.cycles == streaming_cycles(m, rows, cols)

    def test_weight_load_costs_rows_cycles(self):
        array = SystolicArray(rows=16, cols=4)
        assert array.load_weights(np.zeros((16, 4))) == 16

    def test_utilization_grows_with_stream_length(self):
        """Data reuse: longer streams amortize fill/drain -- the paper's
        'higher throughput while consuming less memory bandwidth'."""
        rng = np.random.default_rng(7)
        weights = rng.standard_normal((8, 8))
        short = SystolicArray(rows=8, cols=8).matmul(rng.standard_normal((2, 8)), weights)
        long = SystolicArray(rows=8, cols=8).matmul(rng.standard_normal((64, 8)), weights)
        assert long.utilization > short.utilization

    def test_num_pes_matches_paper_mxu(self):
        assert SystolicArray(rows=256, cols=256).num_pes == 65536

    def test_invalid_cycle_request(self):
        with pytest.raises(ValueError):
            streaming_cycles(0, 4, 4)


class TestValidation:
    def test_stream_before_load_raises(self):
        with pytest.raises(RuntimeError):
            SystolicArray(rows=4, cols=4).stream(np.ones((2, 4)))

    def test_wrong_weight_shape_raises(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=4, cols=4).load_weights(np.ones((3, 4)))

    def test_wrong_activation_shape_raises(self):
        array = SystolicArray(rows=4, cols=4)
        array.load_weights(np.ones((4, 4)))
        with pytest.raises(ValueError):
            array.stream(np.ones((2, 5)))

    def test_empty_activations_raise(self):
        array = SystolicArray(rows=4, cols=4)
        array.load_weights(np.ones((4, 4)))
        with pytest.raises(ValueError):
            array.stream(np.zeros((0, 4)))

    def test_nonpositive_geometry_raises(self):
        with pytest.raises(ValueError):
            SystolicArray(rows=0, cols=4)


class TestProperties:
    @given(
        m=st.integers(min_value=1, max_value=12),
        rows=st.integers(min_value=1, max_value=10),
        cols=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_always_matches_numpy(self, m, rows, cols, seed):
        rng = np.random.default_rng(seed)
        activations = rng.standard_normal((m, rows))
        weights = rng.standard_normal((rows, cols))
        result = SystolicArray(rows=rows, cols=cols).matmul(activations, weights)
        np.testing.assert_allclose(result.output, activations @ weights, atol=1e-9)
        assert result.cycles == m + rows + cols - 2

    @given(
        m=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_int8_range_products_fit_accumulators(self, m, seed):
        """Worst-case int8 dot products stay within int32 accumulator range
        for any reduction length the MXU can host (256)."""
        rng = np.random.default_rng(seed)
        activations = rng.integers(-127, 128, size=(m, 8)).astype(np.int64)
        weights = rng.integers(-127, 128, size=(8, 8)).astype(np.int64)
        result = SystolicArray(rows=8, cols=8).matmul(activations, weights)
        assert np.max(np.abs(result.output)) <= 127 * 127 * 256 < 2**31
