"""Instruction set and scheduler: overlap policies and pricing."""

import pytest

from repro.hw import Instruction, Opcode, Program, Scheduler


def make_program(*instructions):
    program = Program()
    for instruction in instructions:
        program.emit(instruction)
    return program


class TestInstruction:
    def test_engine_classification(self):
        assert Instruction(Opcode.READ_HOST, seconds=1.0).engine == "dma"
        assert Instruction(Opcode.MATMUL, cycles=10).engine == "compute"
        assert Instruction(Opcode.CROSS_REPLICA_SUM, seconds=0.1).engine == "network"

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.MATMUL, cycles=-1)
        with pytest.raises(ValueError):
            Instruction(Opcode.READ_HOST, seconds=-0.1)


class TestProgram:
    def test_histogram(self):
        program = make_program(
            Instruction(Opcode.MATMUL, cycles=5),
            Instruction(Opcode.MATMUL, cycles=5),
            Instruction(Opcode.READ_HOST, seconds=0.1),
        )
        histogram = program.opcode_histogram()
        assert histogram[Opcode.MATMUL] == 2
        assert histogram[Opcode.READ_HOST] == 1

    def test_compute_cycles_sums_compute_engine_only(self):
        program = make_program(
            Instruction(Opcode.MATMUL, cycles=5),
            Instruction(Opcode.ACTIVATE, cycles=3),
            Instruction(Opcode.READ_HOST, seconds=99.0),
        )
        assert program.compute_cycles() == 8

    def test_extend(self):
        first = make_program(Instruction(Opcode.MATMUL, cycles=1))
        second = make_program(Instruction(Opcode.ACTIVATE, cycles=2))
        first.extend(second)
        assert len(first) == 2


class TestScheduler:
    def test_pure_compute_pricing(self):
        scheduler = Scheduler(clock_hz=100.0)
        program = make_program(Instruction(Opcode.MATMUL, cycles=50))
        assert scheduler.run(program).seconds == pytest.approx(0.5)

    def test_dma_overlaps_with_compute(self):
        scheduler = Scheduler(clock_hz=100.0, overlap_dma=True)
        program = make_program(
            Instruction(Opcode.READ_HOST, seconds=0.3),
            Instruction(Opcode.MATMUL, cycles=50),  # 0.5 s
        )
        assert scheduler.run(program).seconds == pytest.approx(0.5)

    def test_dma_serializes_when_overlap_disabled(self):
        scheduler = Scheduler(clock_hz=100.0, overlap_dma=False)
        program = make_program(
            Instruction(Opcode.READ_HOST, seconds=0.3),
            Instruction(Opcode.MATMUL, cycles=50),
        )
        assert scheduler.run(program).seconds == pytest.approx(0.8)

    def test_network_always_serializes(self):
        scheduler = Scheduler(clock_hz=100.0, overlap_dma=True)
        program = make_program(
            Instruction(Opcode.MATMUL, cycles=50),
            Instruction(Opcode.CROSS_REPLICA_SUM, seconds=0.2),
        )
        assert scheduler.run(program).seconds == pytest.approx(0.7)

    def test_weight_load_hides_behind_previous_matmul(self):
        scheduler = Scheduler(clock_hz=1.0, overlap_weight_load=True)
        program = make_program(
            Instruction(Opcode.LOAD_WEIGHTS, cycles=10),  # first load exposed
            Instruction(Opcode.MATMUL, cycles=100),
            Instruction(Opcode.LOAD_WEIGHTS, cycles=10),  # hidden
            Instruction(Opcode.MATMUL, cycles=100),
        )
        result = scheduler.run(program)
        assert result.hidden_weight_load_cycles == 10
        assert result.seconds == pytest.approx(10 + 100 + 0 + 100)

    def test_weight_load_partially_hidden_by_short_matmul(self):
        scheduler = Scheduler(clock_hz=1.0, overlap_weight_load=True)
        program = make_program(
            Instruction(Opcode.MATMUL, cycles=4),
            Instruction(Opcode.LOAD_WEIGHTS, cycles=10),
        )
        result = scheduler.run(program)
        assert result.hidden_weight_load_cycles == 4
        assert result.seconds == pytest.approx(4 + 6)

    def test_weight_load_exposed_when_overlap_disabled(self):
        scheduler = Scheduler(clock_hz=1.0, overlap_weight_load=False)
        program = make_program(
            Instruction(Opcode.MATMUL, cycles=100),
            Instruction(Opcode.LOAD_WEIGHTS, cycles=10),
        )
        assert scheduler.run(program).seconds == pytest.approx(110)

    def test_serial_seconds_upper_bounds_elapsed(self):
        scheduler = Scheduler(clock_hz=100.0, overlap_dma=True)
        program = make_program(
            Instruction(Opcode.READ_HOST, seconds=0.3),
            Instruction(Opcode.MATMUL, cycles=50),
            Instruction(Opcode.CROSS_REPLICA_SUM, seconds=0.1),
            Instruction(Opcode.WRITE_HOST, seconds=0.2),
        )
        result = scheduler.run(program)
        assert result.seconds <= result.serial_seconds

    def test_empty_program_is_free(self):
        scheduler = Scheduler(clock_hz=100.0)
        assert scheduler.run(Program()).seconds == 0.0

    def test_invalid_clock_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(clock_hz=0.0)


class TestDisassembler:
    def test_lists_every_instruction(self):
        program = make_program(
            Instruction(Opcode.LOAD_WEIGHTS, cycles=8, label="w0"),
            Instruction(Opcode.MATMUL, cycles=100, label="mm0"),
            Instruction(Opcode.READ_HOST, seconds=1e-3),
        )
        listing = program.disassemble()
        assert "load_weights" in listing
        assert "; mm0" in listing
        assert "us" in listing  # DMA cost printed in microseconds
        assert len(listing.splitlines()) == 3

    def test_limit_truncates_with_summary(self):
        program = make_program(*[Instruction(Opcode.MATMUL, cycles=1)] * 10)
        listing = program.disassemble(limit=3)
        assert "7 more instruction(s)" in listing
        assert len(listing.splitlines()) == 4

    def test_empty_program(self):
        assert Program().disassemble() == ""
