"""Memory region accounting: capacity, bandwidth, allocation lifecycle."""

import pytest

from repro.hw import (
    MemoryCapacityError,
    MemoryRegion,
    MemorySpec,
    accumulator_spec,
    hbm_spec,
    host_link_spec,
    unified_buffer_spec,
)


def small_region(capacity=1000, bandwidth=100.0, latency=0.5):
    return MemoryRegion(
        MemorySpec(
            name="test",
            capacity_bytes=capacity,
            bandwidth_bytes_per_sec=bandwidth,
            latency_sec=latency,
        )
    )


class TestSpec:
    def test_transfer_time_formula(self):
        spec = MemorySpec("m", 100, bandwidth_bytes_per_sec=50.0, latency_sec=1.0)
        assert spec.transfer_seconds(100) == pytest.approx(1.0 + 2.0)

    def test_zero_bytes_is_free(self):
        assert hbm_spec().transfer_seconds(0) == 0.0

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            hbm_spec().transfer_seconds(-1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            MemorySpec("m", 0, 1.0)
        with pytest.raises(ValueError):
            MemorySpec("m", 10, -1.0)
        with pytest.raises(ValueError):
            MemorySpec("m", 10, 1.0, latency_sec=-0.1)

    def test_presets_have_sane_shapes(self):
        assert hbm_spec().capacity_bytes == 8 * 1024**3
        assert unified_buffer_spec().capacity_bytes == 24 * 1024**2
        assert accumulator_spec().capacity_bytes > 0
        assert host_link_spec().bandwidth_bytes_per_sec < hbm_spec().bandwidth_bytes_per_sec


class TestAllocation:
    def test_alloc_free_cycle(self):
        region = small_region()
        handle = region.alloc(400, label="activations")
        assert region.allocated_bytes == 400
        region.free(handle)
        assert region.allocated_bytes == 0

    def test_capacity_exceeded_raises(self):
        region = small_region(capacity=100)
        region.alloc(80)
        with pytest.raises(MemoryCapacityError):
            region.alloc(30)

    def test_error_message_names_region_and_label(self):
        region = small_region(capacity=10)
        with pytest.raises(MemoryCapacityError, match="test.*weights"):
            region.alloc(11, label="weights")

    def test_peak_tracking(self):
        region = small_region()
        a = region.alloc(300)
        b = region.alloc(500)
        region.free(a)
        region.alloc(100)
        assert region.peak_bytes == 800
        region.free(b)
        assert region.peak_bytes == 800  # peak is sticky

    def test_double_free_raises(self):
        region = small_region()
        handle = region.alloc(10)
        region.free(handle)
        with pytest.raises(KeyError):
            region.free(handle)

    def test_free_all(self):
        region = small_region()
        region.alloc(10)
        region.alloc(20)
        region.free_all()
        assert region.allocated_bytes == 0
        assert region.live_allocations == ()

    def test_negative_alloc_rejected(self):
        with pytest.raises(ValueError):
            small_region().alloc(-5)

    def test_live_allocations_visible(self):
        region = small_region()
        region.alloc(10, label="x")
        labels = [a.label for a in region.live_allocations]
        assert labels == ["x"]

    def test_exact_fit_allowed(self):
        region = small_region(capacity=100)
        region.alloc(100)  # must not raise
        assert region.allocated_bytes == 100
