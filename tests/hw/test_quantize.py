"""Tests for symmetric quantization -- the TPU's first speed mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    BF16,
    FP64,
    INT8,
    PrecisionSpec,
    dequantize,
    precision_spec,
    quantization_error_bound,
    quantization_scale,
    quantize,
    quantize_dequantize,
    quantized_complex_matmul,
    quantized_conv_error_bound,
    quantized_matmul,
    resolve_precision,
    to_bfloat16,
)


class TestQuantizeRoundTrip:
    def test_round_trip_error_within_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 16))
        q = quantize(x, bits=8)
        bound = quantization_error_bound(x, bits=8)
        np.testing.assert_array_less(np.abs(dequantize(q) - x), bound + 1e-12)

    def test_zero_maps_to_zero_exactly(self):
        x = np.array([[0.0, 1.0], [-1.0, 0.0]])
        q = quantize(x)
        assert q.values[0, 0] == 0
        assert q.values[1, 1] == 0
        np.testing.assert_allclose(dequantize(q)[0, 0], 0.0)

    def test_all_zero_tensor(self):
        q = quantize(np.zeros((4, 4)))
        assert q.scale == 1.0
        np.testing.assert_array_equal(dequantize(q), np.zeros((4, 4)))

    def test_max_value_maps_to_qmax(self):
        x = np.array([3.0, -3.0, 1.0])
        q = quantize(x, bits=8)
        assert q.values.max() == 127
        assert q.values.min() == -127

    def test_int8_storage_dtype(self):
        q = quantize(np.ones(5), bits=8)
        assert q.values.dtype == np.int8

    def test_int16_storage_dtype(self):
        q = quantize(np.ones(5), bits=16)
        assert q.values.dtype == np.int16

    def test_complex_input_rejected(self):
        with pytest.raises(TypeError):
            quantize(np.ones(3) + 1j)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            quantization_scale(np.ones(3), bits=1)

    def test_scale_positive_for_tiny_values(self):
        scale = quantization_scale(np.array([1e-30]), bits=8)
        assert scale > 0


class TestQuantizedMatmul:
    def test_close_to_float_matmul(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        exact = a @ b
        approx = quantized_matmul(a, b, bits=8)
        # Error scales with sqrt(k) * step sizes; 8-bit on unit-scale data
        # keeps relative error within a few percent.
        assert np.max(np.abs(exact - approx)) < 0.15 * np.max(np.abs(exact)) + 0.1

    def test_higher_bits_reduce_error(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        exact = a @ b
        err8 = np.max(np.abs(exact - quantized_matmul(a, b, bits=8)))
        err16 = np.max(np.abs(exact - quantized_matmul(a, b, bits=16)))
        assert err16 < err8

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantized_matmul(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            quantized_matmul(np.ones(3), np.ones((3, 2)))

    def test_identity_times_identity(self):
        eye = np.eye(4)
        np.testing.assert_allclose(quantized_matmul(eye, eye), eye, atol=1e-6)

    def test_complex_decomposition(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        exact = a @ b
        approx = quantized_complex_matmul(a, b, bits=16)
        assert np.max(np.abs(exact - approx)) < 0.01 * np.max(np.abs(exact)) + 0.01


class TestBfloat16:
    def test_relative_error_bound(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(1000) * 100
        rounded = to_bfloat16(x)
        # bf16 has 8 mantissa bits total (7 stored): rel err <= 2^-8.
        rel = np.abs(rounded - x) / np.maximum(np.abs(x), 1e-30)
        assert np.max(rel) <= 2.0**-8

    def test_exact_for_small_integers(self):
        x = np.array([0.0, 1.0, 2.0, -3.0, 128.0])
        np.testing.assert_array_equal(to_bfloat16(x), x)

    def test_complex_passthrough(self):
        x = np.array([1.0 + 2.0j, -0.5 + 0.25j])
        rounded = to_bfloat16(x)
        np.testing.assert_allclose(rounded, x, rtol=2.0**-7)

    def test_handles_zero(self):
        np.testing.assert_array_equal(to_bfloat16(np.zeros(3)), np.zeros(3))


class TestPrecisionSpec:
    def test_lookup(self):
        assert precision_spec("int8").bytes_per_element == 1
        assert precision_spec("bf16").bytes_per_element == 2
        assert precision_spec("fp32").bytes_per_element == 4
        assert precision_spec("fp64").bytes_per_element == 8

    def test_unknown_rejected_with_vocabulary_listed(self):
        """The single parsing point's error names every valid mode."""
        with pytest.raises(ValueError, match="fp16"):
            precision_spec("fp16")
        for name in ("int8", "bf16", "fp32", "fp64"):
            with pytest.raises(ValueError, match=name):
                precision_spec("not-a-precision")
        with pytest.raises(ValueError):
            precision_spec(8)  # wrong type, same helpful error

    def test_spec_instances_pass_through(self):
        assert precision_spec(INT8) is INT8
        assert resolve_precision(BF16) is BF16

    def test_resolve_none_means_no_precision_handling(self):
        assert resolve_precision(None) is None
        assert resolve_precision("fp64") is FP64

    def test_fp32_apply_is_identity(self):
        x = np.array([1.234567891234])
        np.testing.assert_array_equal(precision_spec("fp32").apply(x), x)

    def test_fp64_apply_is_identity_and_exact(self):
        x = np.array([1.234567891234])
        np.testing.assert_array_equal(FP64.apply(x), x)
        assert FP64.is_exact and precision_spec("fp32").is_exact
        assert not INT8.is_exact and not BF16.is_exact

    def test_int8_apply_round_trips_per_plane(self):
        rng = np.random.default_rng(7)
        stack = rng.standard_normal((5, 6, 6)) * np.array(
            [1.0, 10.0, 0.1, 100.0, 3.0]
        ).reshape(5, 1, 1)
        applied = INT8.apply(stack)
        for plane, rounded in zip(stack, applied):
            np.testing.assert_array_equal(
                rounded, dequantize(quantize(plane, bits=8))
            )

    def test_apply_rejects_unimplemented_lossy_spec(self):
        """A hand-built spec with no rounding semantics must raise at
        apply() rather than silently executing exact numerics while
        being priced as lossy."""
        fake = PrecisionSpec(name="int4", bytes_per_element=1, macs_per_pe_per_cycle=1.0)
        assert not fake.is_exact
        with pytest.raises(ValueError, match="int4"):
            fake.apply(np.ones((2, 2)))

    def test_fp64_slower_than_fp32_on_mxu(self):
        from repro.hw import MxuConfig, matmul_cycles

        fp32 = matmul_cycles(256, 256, 256, MxuConfig(precision="fp32")).cycles
        fp64 = matmul_cycles(256, 256, 256, MxuConfig(precision="fp64")).cycles
        assert fp64 > fp32


class TestQuantizeDequantize:
    def test_stack_matches_per_plane_round_trips(self):
        """The bit-identity that makes streamed == dense == loop hold at
        int8: quantizing a stack per plane equals quantizing each plane
        alone."""
        rng = np.random.default_rng(11)
        stack = rng.standard_normal((9, 8, 8)) * rng.uniform(0.01, 50.0, (9, 1, 1))
        batched = quantize_dequantize(stack, bits=8)
        for i in range(stack.shape[0]):
            np.testing.assert_array_equal(
                batched[i], quantize_dequantize(stack[i], bits=8)
            )

    def test_complex_rounds_components_independently(self):
        rng = np.random.default_rng(12)
        z = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4)) * 40.0
        rounded = quantize_dequantize(z)
        np.testing.assert_array_equal(rounded.real, quantize_dequantize(z.real))
        np.testing.assert_array_equal(rounded.imag, quantize_dequantize(z.imag))

    def test_round_trip_error_within_per_plane_bound(self):
        rng = np.random.default_rng(13)
        stack = rng.standard_normal((6, 8, 8)) * rng.uniform(0.1, 20.0, (6, 1, 1))
        rounded = quantize_dequantize(stack, bits=8)
        for plane, out in zip(stack, rounded):
            bound = quantization_error_bound(plane, bits=8)
            assert np.max(np.abs(out - plane)) <= bound + 1e-12

    def test_all_zero_plane_exact(self):
        stack = np.zeros((2, 3, 3))
        stack[1] = 1.5
        rounded = quantize_dequantize(stack)
        np.testing.assert_array_equal(rounded[0], np.zeros((3, 3)))

    def test_preserves_hermitian_symmetry(self):
        """Spectra of real signals stay Hermitian through quantization,
        so quantized convolutions of real planes stay real."""
        from repro.fft import fft2

        rng = np.random.default_rng(14)
        spectrum = fft2(rng.standard_normal((8, 8)))
        rounded = quantize_dequantize(spectrum)
        m, n = spectrum.shape
        conj_flip = np.conj(rounded[(-np.arange(m)) % m][:, (-np.arange(n)) % n])
        np.testing.assert_allclose(rounded, conj_flip, atol=0)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            quantize_dequantize(np.ones((2, 3, 3)), bits=1)


class TestQuantizedConvErrorBound:
    def setup_method(self):
        rng = np.random.default_rng(21)
        self.x = rng.standard_normal((8, 8))
        self.kernel = rng.standard_normal((8, 8))

    def test_bound_monotone_in_bits(self):
        bounds = [
            quantized_conv_error_bound(self.x, self.kernel, bits=b)
            for b in (4, 8, 16)
        ]
        assert bounds[0] > bounds[1] > bounds[2] > 0

    def test_quantized_convolution_respects_bound(self):
        from repro.fft import fft_circular_convolve2d

        exact = fft_circular_convolve2d(self.x, self.kernel)
        quantized = fft_circular_convolve2d(self.x, self.kernel, precision=INT8)
        bound = quantized_conv_error_bound(self.x, self.kernel, bits=8)
        assert np.max(np.abs(quantized - exact)) <= bound

    def test_bound_holds_for_masked_variants(self):
        """Masking only shrinks the input's l1 mass, so one bound covers
        every zero-fill masked plane of the batched path."""
        from repro.fft import fft_circular_convolve2d

        bound = quantized_conv_error_bound(self.x, self.kernel, bits=8)
        masked = self.x.copy()
        masked[:4, :4] = 0.0
        exact = fft_circular_convolve2d(masked, self.kernel)
        quantized = fft_circular_convolve2d(masked, self.kernel, precision=INT8)
        assert np.max(np.abs(quantized - exact)) <= bound

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantized_conv_error_bound(np.ones((2, 2)), np.ones((3, 3)))


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        bits=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_bound_holds(self, seed, scale, bits):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64) * scale
        q = quantize(x, bits=bits)
        bound = quantization_error_bound(x, bits=bits)
        assert np.max(np.abs(dequantize(q) - x)) <= bound + 1e-9 * scale

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quantize_is_idempotent_on_grid(self, seed):
        """Quantizing an already-quantized tensor is exact."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        once = dequantize(quantize(x))
        twice = dequantize(quantize(once))
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, seed, factor):
        """Scaling the input scales the quantization scale linearly."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        s1 = quantization_scale(x)
        s2 = quantization_scale(x * factor)
        np.testing.assert_allclose(s2, s1 * factor, rtol=1e-9)
