"""Tests for symmetric quantization -- the TPU's first speed mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    dequantize,
    precision_spec,
    quantization_error_bound,
    quantization_scale,
    quantize,
    quantized_complex_matmul,
    quantized_matmul,
    to_bfloat16,
)


class TestQuantizeRoundTrip:
    def test_round_trip_error_within_half_step(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((16, 16))
        q = quantize(x, bits=8)
        bound = quantization_error_bound(x, bits=8)
        np.testing.assert_array_less(np.abs(dequantize(q) - x), bound + 1e-12)

    def test_zero_maps_to_zero_exactly(self):
        x = np.array([[0.0, 1.0], [-1.0, 0.0]])
        q = quantize(x)
        assert q.values[0, 0] == 0
        assert q.values[1, 1] == 0
        np.testing.assert_allclose(dequantize(q)[0, 0], 0.0)

    def test_all_zero_tensor(self):
        q = quantize(np.zeros((4, 4)))
        assert q.scale == 1.0
        np.testing.assert_array_equal(dequantize(q), np.zeros((4, 4)))

    def test_max_value_maps_to_qmax(self):
        x = np.array([3.0, -3.0, 1.0])
        q = quantize(x, bits=8)
        assert q.values.max() == 127
        assert q.values.min() == -127

    def test_int8_storage_dtype(self):
        q = quantize(np.ones(5), bits=8)
        assert q.values.dtype == np.int8

    def test_int16_storage_dtype(self):
        q = quantize(np.ones(5), bits=16)
        assert q.values.dtype == np.int16

    def test_complex_input_rejected(self):
        with pytest.raises(TypeError):
            quantize(np.ones(3) + 1j)

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            quantization_scale(np.ones(3), bits=1)

    def test_scale_positive_for_tiny_values(self):
        scale = quantization_scale(np.array([1e-30]), bits=8)
        assert scale > 0


class TestQuantizedMatmul:
    def test_close_to_float_matmul(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        exact = a @ b
        approx = quantized_matmul(a, b, bits=8)
        # Error scales with sqrt(k) * step sizes; 8-bit on unit-scale data
        # keeps relative error within a few percent.
        assert np.max(np.abs(exact - approx)) < 0.15 * np.max(np.abs(exact)) + 0.1

    def test_higher_bits_reduce_error(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((16, 16))
        b = rng.standard_normal((16, 16))
        exact = a @ b
        err8 = np.max(np.abs(exact - quantized_matmul(a, b, bits=8)))
        err16 = np.max(np.abs(exact - quantized_matmul(a, b, bits=16)))
        assert err16 < err8

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            quantized_matmul(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            quantized_matmul(np.ones(3), np.ones((3, 2)))

    def test_identity_times_identity(self):
        eye = np.eye(4)
        np.testing.assert_allclose(quantized_matmul(eye, eye), eye, atol=1e-6)

    def test_complex_decomposition(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        b = rng.standard_normal((6, 6)) + 1j * rng.standard_normal((6, 6))
        exact = a @ b
        approx = quantized_complex_matmul(a, b, bits=16)
        assert np.max(np.abs(exact - approx)) < 0.01 * np.max(np.abs(exact)) + 0.01


class TestBfloat16:
    def test_relative_error_bound(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(1000) * 100
        rounded = to_bfloat16(x)
        # bf16 has 8 mantissa bits total (7 stored): rel err <= 2^-8.
        rel = np.abs(rounded - x) / np.maximum(np.abs(x), 1e-30)
        assert np.max(rel) <= 2.0**-8

    def test_exact_for_small_integers(self):
        x = np.array([0.0, 1.0, 2.0, -3.0, 128.0])
        np.testing.assert_array_equal(to_bfloat16(x), x)

    def test_complex_passthrough(self):
        x = np.array([1.0 + 2.0j, -0.5 + 0.25j])
        rounded = to_bfloat16(x)
        np.testing.assert_allclose(rounded, x, rtol=2.0**-7)

    def test_handles_zero(self):
        np.testing.assert_array_equal(to_bfloat16(np.zeros(3)), np.zeros(3))


class TestPrecisionSpec:
    def test_lookup(self):
        assert precision_spec("int8").bytes_per_element == 1
        assert precision_spec("bf16").bytes_per_element == 2
        assert precision_spec("fp32").bytes_per_element == 4

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            precision_spec("fp64")

    def test_fp32_apply_is_identity(self):
        x = np.array([1.234567891234])
        np.testing.assert_array_equal(precision_spec("fp32").apply(x), x)


class TestProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        scale=st.floats(min_value=1e-3, max_value=1e3),
        bits=st.sampled_from([4, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_bound_holds(self, seed, scale, bits):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64) * scale
        q = quantize(x, bits=bits)
        bound = quantization_error_bound(x, bits=bits)
        assert np.max(np.abs(dequantize(q) - x)) <= bound + 1e-9 * scale

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_quantize_is_idempotent_on_grid(self, seed):
        """Quantizing an already-quantized tensor is exact."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        once = dequantize(quantize(x))
        twice = dequantize(quantize(once))
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        factor=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_scale_equivariance(self, seed, factor):
        """Scaling the input scales the quantization scale linearly."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32)
        s1 = quantization_scale(x)
        s2 = quantization_scale(x * factor)
        np.testing.assert_allclose(s2, s1 * factor, rtol=1e-9)
