"""Performance-analysis helpers."""

import pytest

from repro.hw import (
    AmdahlBreakdown,
    DeviceStats,
    format_stats,
    matmul_operational_intensity,
    operational_intensity,
    roofline_attainable_flops,
    speedup,
)


class TestSpeedup:
    def test_basic(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)

    def test_below_one_means_slowdown(self):
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_zero_accelerated_rejected(self):
        with pytest.raises(ZeroDivisionError):
            speedup(1.0, 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            speedup(-1.0, 1.0)


class TestRoofline:
    def test_compute_bound_region(self):
        # Very high intensity: capped by peak.
        assert roofline_attainable_flops(1e6, peak_flops=100.0, memory_bandwidth=1.0) == 100.0

    def test_memory_bound_region(self):
        assert roofline_attainable_flops(0.5, peak_flops=100.0, memory_bandwidth=10.0) == 5.0

    def test_ridge_point(self):
        # intensity == peak/bw sits exactly at the roofline knee.
        assert roofline_attainable_flops(10.0, peak_flops=100.0, memory_bandwidth=10.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_attainable_flops(-1.0, 10.0, 10.0)
        with pytest.raises(ValueError):
            roofline_attainable_flops(1.0, 0.0, 10.0)


class TestOperationalIntensity:
    def test_zero_traffic_is_infinite(self):
        assert operational_intensity(100.0, 0.0) == float("inf")

    def test_matmul_intensity_grows_with_size(self):
        small = matmul_operational_intensity(8, 8, 8)
        large = matmul_operational_intensity(512, 512, 512)
        assert large > small

    def test_square_matmul_intensity_formula(self):
        # 2n^3 / (4 * 3n^2) = n/6 for fp32.
        assert matmul_operational_intensity(60, 60, 60) == pytest.approx(10.0)


class TestAmdahl:
    def test_speedup_monotone_in_cores(self):
        breakdown = AmdahlBreakdown(serial_seconds=1.0, parallel_seconds=9.0)
        s2 = breakdown.speedup_with_cores(2)
        s16 = breakdown.speedup_with_cores(16)
        assert 1.0 < s2 < s16

    def test_asymptote_bounded_by_serial_fraction(self):
        breakdown = AmdahlBreakdown(serial_seconds=1.0, parallel_seconds=9.0)
        assert breakdown.speedup_with_cores(10**6) < 10.0  # limit = total/serial

    def test_no_work_gives_unity(self):
        assert AmdahlBreakdown(0.0, 0.0).speedup_with_cores(8) == 1.0

    def test_invalid_cores(self):
        with pytest.raises(ValueError):
            AmdahlBreakdown(1.0, 1.0).speedup_with_cores(0)


class TestFormatting:
    def test_format_stats_mentions_ops(self):
        stats = DeviceStats()
        stats.record("matmul", 0.5, macs=1000)
        text = format_stats(stats, label="unit-test")
        assert "unit-test" in text
        assert "matmul" in text
        assert "1,000" in text
