"""TpuPod: device cloning, ledger roll-up, and commit reconciliation."""

import numpy as np
import pytest

from repro.core import TpuBackend, make_tpu_chip, make_tpu_pod
from repro.hw import CpuConfig, CpuDevice, Interconnect, InterconnectConfig
from repro.hw.device import pipelined_elapsed_seconds
from repro.hw.pod import PodWaveStats, TpuPod, clone_device


def small_backend():
    return TpuBackend(make_tpu_chip(num_cores=4))


def wave(index, chip_seconds, scatter=0.0, broadcast=0.0, gather=0.0):
    return PodWaveStats(
        wave_index=index,
        placement="data",
        num_pairs=len(chip_seconds),
        num_rows=10,
        active_chips=len(chip_seconds),
        chip_seconds=tuple(chip_seconds),
        scatter_seconds=scatter,
        scatter_bytes=int(scatter * 1e6),
        broadcast_seconds=broadcast,
        broadcast_bytes=int(broadcast * 1e6),
        gather_seconds=gather,
        gather_bytes=int(gather * 1e6),
    )


class TestCloneDevice:
    def test_tpu_backend_clone_is_isolated(self):
        original = small_backend()
        original.stats.record("warmup", 1.0)
        clone = clone_device(original)
        assert isinstance(clone, TpuBackend)
        assert clone is not original
        assert clone.chip is not original.chip
        assert clone.chip.config == original.chip.config
        assert clone.stats.seconds == 0.0

    def test_config_rebuild_fallback(self):
        cpu = CpuDevice(CpuConfig())
        clone = clone_device(cpu)
        assert isinstance(clone, CpuDevice)
        assert clone is not cpu

    def test_unreplicable_device_raises(self):
        class Bare:
            pass

        with pytest.raises(TypeError):
            clone_device(Bare())


class TestPodConstruction:
    def test_like_builds_fresh_clones(self):
        template = small_backend()
        template.stats.record("warmup", 2.0)
        pod = TpuPod.like(template, 4)
        assert pod.num_chips == 4
        assert all(d is not template for d in pod.devices)
        assert all(d.stats.seconds == 0.0 for d in pod.devices)
        # The template's ledger is never aliased by the pod.
        assert template.stats.seconds == 2.0

    def test_make_tpu_pod_factory(self):
        pod = make_tpu_pod(2, num_cores=4)
        assert pod.num_chips == 2
        assert all(isinstance(d, TpuBackend) for d in pod.devices)
        with pytest.raises(ValueError):
            make_tpu_pod(0)

    def test_pods_do_not_nest(self):
        pod = make_tpu_pod(2, num_cores=4)
        with pytest.raises(TypeError):
            TpuPod([pod])
        with pytest.raises(TypeError):
            TpuPod.like(pod, 2)

    def test_empty_and_non_device_members_rejected(self):
        with pytest.raises(ValueError):
            TpuPod([])
        with pytest.raises(TypeError):
            TpuPod([object()])

    def test_interconnect_config_accepted(self):
        config = InterconnectConfig(topology="torus2d")
        pod = TpuPod([small_backend()], interconnect=config)
        assert isinstance(pod.interconnect, Interconnect)
        assert pod.interconnect.config.topology == "torus2d"


class TestCommitRun:
    def test_row_sum_identity(self):
        """stats.seconds must equal the sum of its op rows after commit."""
        pod = make_tpu_pod(2, num_cores=4)
        for device in pod.devices:
            device.stats.record("conv2d_batch", 0.5)
        pod.commit_run([wave(0, [0.5, 0.5], scatter=0.1, gather=0.05)])
        assert pod.stats.seconds == pytest.approx(
            sum(pod.stats.op_seconds.values())
        )

    def test_elapsed_reconstruction(self):
        """Elapsed = pipelined stage model over the committed waves."""
        pod = make_tpu_pod(2, num_cores=4)
        for device, s in zip(pod.devices, (0.4, 0.6)):
            device.stats.record("conv2d_batch", s)
        waves = [wave(0, [0.4, 0.6], scatter=0.1, broadcast=0.02, gather=0.05)]
        elapsed = pod.commit_run(waves)
        assert elapsed == pytest.approx(0.1 + 0.02 + 0.6 + 0.05)
        assert pod.stats.seconds == pytest.approx(elapsed)
        # Work (sum over chips) survives in the audit rows + credits.
        assert pod.stats.op_seconds["conv2d_batch"] == pytest.approx(1.0)
        assert pod.stats.op_seconds["pod_compute_overlap"] == pytest.approx(-0.4)

    def test_serial_vs_pipelined_overlap_credit(self):
        waves = [
            wave(0, [0.5, 0.5], scatter=0.2, gather=0.1),
            wave(1, [0.5, 0.5], scatter=0.2, gather=0.1),
        ]
        serial_pod = make_tpu_pod(2, num_cores=4)
        for device in serial_pod.devices:
            device.stats.record("conv2d_batch", 1.0)
        serial = serial_pod.commit_run(waves, pipelined=False)

        piped_pod = make_tpu_pod(2, num_cores=4)
        for device in piped_pod.devices:
            device.stats.record("conv2d_batch", 1.0)
        piped = piped_pod.commit_run(waves, pipelined=True)

        assert piped == pytest.approx(
            pipelined_elapsed_seconds([w.stage for w in waves])
        )
        assert piped < serial
        assert piped_pod.stats.op_seconds["collective_overlap"] == pytest.approx(
            piped - serial
        )
        assert "collective_overlap" not in serial_pod.stats.op_seconds

    def test_chip_stats_harvested(self):
        pod = make_tpu_pod(2, num_cores=4)
        pod.devices[0].stats.record("conv2d_batch", 0.3, macs=100)
        pod.devices[1].stats.record("conv2d_batch", 0.7, macs=200)
        pod.commit_run([wave(0, [0.3, 0.7])])
        assert pod.chip_stats[0].seconds == pytest.approx(0.3)
        assert pod.chip_stats[1].seconds == pytest.approx(0.7)
        assert pod.stats.macs == 300
        # Chips were drained into the pod ledger.
        assert all(d.stats.seconds == 0.0 for d in pod.devices)

    def test_collective_log_extends(self):
        pod = make_tpu_pod(2, num_cores=4)
        pod.commit_run([wave(0, [0.1, 0.1])])
        pod.commit_run([wave(0, [0.2, 0.2]), wave(1, [0.2, 0.2])])
        assert len(pod.collective_log) == 3

    def test_reset_stats_clears_everything(self):
        pod = make_tpu_pod(2, num_cores=4)
        pod.devices[0].stats.record("conv2d_batch", 0.3)
        pod.commit_run([wave(0, [0.3, 0.0], scatter=0.1)])
        pod.reset_stats()
        assert pod.stats.seconds == 0.0
        assert pod.collective_log == []
        assert all(s.seconds == 0.0 for s in pod.chip_stats)
        assert all(d.stats.seconds == 0.0 for d in pod.devices)


class TestPodAsDevice:
    def test_unsharded_ops_price_like_root(self):
        pod = make_tpu_pod(2, num_cores=4)
        root = small_backend()
        assert pod.matmul_seconds(8, 8, 8) == root.matmul_seconds(8, 8, 8)
        assert pod.fft2_seconds(8, 8) == root.fft2_seconds(8, 8)
        assert pod.transfer_seconds(1000) == root.transfer_seconds(1000)

    def test_functional_ops_work(self):
        pod = make_tpu_pod(2, num_cores=4)
        a = np.eye(4)
        b = np.arange(16.0).reshape(4, 4)
        product = pod.matmul(a, b)
        assert np.allclose(product, small_backend().matmul(a, b))
        assert pod.stats.seconds > 0.0
