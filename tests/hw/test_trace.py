"""Systolic execution tracing: waveforms, heatmaps, VCD export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import (
    SystolicArray,
    streaming_cycles,
    trace_matmul,
    trace_pass,
    utilization_ascii,
    write_vcd,
)


class TestTracePass:
    def test_cycle_count_matches_schedule(self):
        trace = trace_pass(rows=4, cols=4, stream_rows=8)
        assert trace.cycles == streaming_cycles(8, 4, 4)

    def test_envelope_shape(self):
        """Fill ramps up, plateau sits at 1.0, drain ramps down."""
        trace = trace_pass(rows=4, cols=4, stream_rows=32)
        utilization = trace.utilization
        assert utilization[0] == pytest.approx(1 / 16)  # one PE active
        assert trace.peak_utilization == pytest.approx(1.0)
        assert utilization[-1] == pytest.approx(1 / 16)
        assert trace.steady_state_cycles > 0

    def test_short_streams_never_reach_full_utilization(self):
        trace = trace_pass(rows=8, cols=8, stream_rows=2)
        assert trace.peak_utilization < 1.0

    def test_mean_utilization_grows_with_stream_length(self):
        short = trace_pass(rows=8, cols=8, stream_rows=4)
        long = trace_pass(rows=8, cols=8, stream_rows=64)
        assert long.mean_utilization > short.mean_utilization

    def test_pe_activity_uniform_for_dense_pass(self):
        trace = trace_pass(rows=3, cols=5, stream_rows=7)
        np.testing.assert_array_equal(trace.pe_activity, np.full((3, 5), 7))

    def test_total_activity_equals_macs(self):
        """Integral of the utilization waveform = total MAC count."""
        rows, cols, m = 4, 6, 9
        trace = trace_pass(rows, cols, m)
        total = trace.utilization.sum() * rows * cols
        assert total == pytest.approx(m * rows * cols)

    def test_validation(self):
        with pytest.raises(ValueError):
            trace_pass(0, 4, 4)
        with pytest.raises(ValueError):
            trace_pass(4, 4, 0)


class TestTraceMatmul:
    def test_agrees_with_cycle_level_simulation(self):
        rng = np.random.default_rng(0)
        array = SystolicArray(rows=4, cols=4)
        activations = rng.uniform(0.5, 1.5, size=(6, 4))  # dense, no zeros
        weights = rng.standard_normal((4, 4))
        trace = trace_matmul(array, activations, weights)
        assert trace.cycles == streaming_cycles(6, 4, 4)

    def test_sparse_activations_skip_verification(self):
        array = SystolicArray(rows=4, cols=4)
        activations = np.zeros((4, 4))
        activations[0, 0] = 1.0
        weights = np.ones((4, 4))
        trace = trace_matmul(array, activations, weights)  # must not raise
        assert trace.stream_rows == 4


class TestAsciiPlot:
    def test_contains_axis_and_stats(self):
        trace = trace_pass(4, 4, 16)
        plot = utilization_ascii(trace)
        assert "cycles" in plot
        assert "#" in plot
        assert "mean" in plot

    def test_invalid_dimensions(self):
        trace = trace_pass(2, 2, 4)
        with pytest.raises(ValueError):
            utilization_ascii(trace, width=0)


class TestVcd:
    def test_header_and_definitions(self):
        trace = trace_pass(2, 2, 4)
        vcd = write_vcd(trace)
        assert "$timescale" in vcd
        assert "$var wire 1 @ busy $end" in vcd
        assert "$enddefinitions $end" in vcd

    def test_busy_toggles_once_each_way(self):
        trace = trace_pass(2, 2, 4)
        vcd = write_vcd(trace)
        assert vcd.count("1@") == 1
        assert vcd.count("0@") == 1  # final quiesce

    def test_change_compression(self):
        """Only cycles where a value changes appear as timestamps."""
        trace = trace_pass(4, 4, 64)
        vcd = write_vcd(trace)
        timestamps = [line for line in vcd.splitlines() if line.startswith("#")]
        assert len(timestamps) < trace.cycles  # plateau is compressed away

    def test_invalid_module_name(self):
        trace = trace_pass(2, 2, 2)
        with pytest.raises(ValueError):
            write_vcd(trace, module="bad name")


class TestProperties:
    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        m=st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_activity_integral_equals_mac_count(self, rows, cols, m):
        trace = trace_pass(rows, cols, m)
        total = trace.utilization.sum() * rows * cols
        assert total == pytest.approx(m * rows * cols)

    @given(
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=6),
        m=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_trace_consistent_with_simulator(self, rows, cols, m, seed):
        """Derived schedule == cycle-level counter for dense inputs."""
        rng = np.random.default_rng(seed)
        array = SystolicArray(rows=rows, cols=cols)
        activations = rng.uniform(0.5, 1.5, size=(m, rows))
        weights = rng.standard_normal((rows, cols))
        trace_matmul(array, activations, weights)  # raises on divergence
