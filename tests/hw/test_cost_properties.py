"""Property tests on the device cost models.

The tables' credibility rests on the cost models behaving like physical
systems: monotone in work, superadditive under op splitting (overheads),
insensitive to nothing they should depend on.  Hypothesis sweeps the
parameter space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.hw import CpuDevice, GpuDevice, TpuCore

DEVICE_FACTORIES = [
    ("cpu", CpuDevice),
    ("gpu", GpuDevice),
    ("tpu-core", TpuCore),
    ("tpu-chip", lambda: TpuBackend(make_tpu_chip(num_cores=8))),
]

dims = st.integers(min_value=1, max_value=512)


@pytest.mark.parametrize("name,factory", DEVICE_FACTORIES)
class TestMatmulCostProperties:
    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=30, deadline=None)
    def test_positive(self, name, factory, m, k, n):
        assert factory().matmul_seconds(m, k, n) > 0

    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_each_dimension(self, name, factory, m, k, n):
        device = factory()
        base = device.matmul_seconds(m, k, n)
        assert device.matmul_seconds(2 * m, k, n) >= base
        assert device.matmul_seconds(m, 2 * k, n) >= base
        assert device.matmul_seconds(m, k, 2 * n) >= base

    @given(m=dims, k=dims, n=dims)
    @settings(max_examples=30, deadline=None)
    def test_splitting_never_cheaper(self, name, factory, m, k, n):
        """Two half-sized ops cost at least the fused op (overheads)."""
        device = factory()
        fused = device.matmul_seconds(2 * m, k, n)
        split = 2 * device.matmul_seconds(m, k, n)
        assert split >= fused * (1 - 1e-9)

    @given(elements=st.integers(min_value=1, max_value=1 << 22))
    @settings(max_examples=30, deadline=None)
    def test_elementwise_monotone(self, name, factory, elements):
        device = factory()
        assert (
            device.elementwise_seconds(2 * elements)
            >= device.elementwise_seconds(elements) > 0
        )

    @given(nbytes=st.integers(min_value=0, max_value=1 << 26))
    @settings(max_examples=30, deadline=None)
    def test_transfer_monotone(self, name, factory, nbytes):
        device = factory()
        assert device.transfer_seconds(2 * nbytes) >= device.transfer_seconds(nbytes)
        assert device.transfer_seconds(0) == 0.0


class TestFftCostProperties:
    @given(size=st.sampled_from([32, 64, 128, 256, 512]))
    @settings(max_examples=20, deadline=None)
    def test_fft_cost_superquadratic_for_matmul_form(self, size):
        """Matmul-form transforms scale ~n^3 once compute dominates the
        per-op overhead: doubling n costs >4x (at tiny sizes the fixed
        dispatch overhead flattens the curve, which is also correct)."""
        device = CpuDevice()
        assert device.fft2_seconds(2 * size, 2 * size) > 4 * device.fft2_seconds(
            size, size
        )

    @given(size=st.sampled_from([64, 128, 256, 512]))
    @settings(max_examples=20, deadline=None)
    def test_tpu_backend_cost_between_zero_and_single_core(self, size):
        chip_backend = TpuBackend(make_tpu_chip(num_cores=8))
        single = TpuBackend(make_tpu_chip(num_cores=1))
        many = chip_backend.fft2_seconds(size, size)
        assert many > 0
        # Sharding adds communication; it can exceed single-core at
        # small sizes but never by more than the collective itself.
        collective = 2 * chip_backend.chip.interconnect.all_reduce_seconds(
            size * size * 16, 8
        )
        assert many <= single.fft2_seconds(size, size) + collective + 1e-9


class TestProgramScopes:
    def test_cpu_program_charges_local_copies(self):
        device = CpuDevice()
        with device.program(infeed_bytes=1 << 20, outfeed_bytes=1 << 20):
            pass
        stats = device.take_stats()
        assert stats.op_counts["host_to_device"] == 1
        assert stats.op_counts["device_to_host"] == 1

    def test_gpu_program_charges_pcie(self):
        device = GpuDevice()
        with device.program(infeed_bytes=1 << 20):
            pass
        stats = device.take_stats()
        assert stats.seconds >= (1 << 20) / device.config.pcie_bandwidth_bytes_per_sec

    def test_zero_byte_program_is_free_on_eager_devices(self):
        device = CpuDevice()
        with device.program():
            pass
        assert device.stats.seconds == 0.0

    def test_ops_inside_scope_still_accumulate(self):
        device = CpuDevice()
        with device.program(infeed_bytes=100):
            device.matmul(np.ones((4, 4)), np.ones((4, 4)))
        stats = device.take_stats()
        assert stats.op_counts["matmul"] == 1
        assert stats.op_counts["host_to_device"] == 1
