"""Device backends: functional correctness, stats ledgers, timing order."""

import numpy as np
import pytest

from repro.hw import (
    CpuConfig,
    CpuDevice,
    DeviceStats,
    GpuConfig,
    GpuDevice,
    MxuConfig,
    TpuChip,
    TpuChipConfig,
    TpuCore,
    TpuCoreConfig,
)


def tiny_tpu_core(precision="fp32", **kwargs):
    return TpuCore(
        TpuCoreConfig(mxu=MxuConfig(rows=8, cols=8, precision=precision), **kwargs)
    )


DEVICES = [
    ("cpu", lambda: CpuDevice()),
    ("gpu", lambda: GpuDevice()),
    ("tpu", lambda: tiny_tpu_core()),
]


@pytest.mark.parametrize("name,factory", DEVICES)
class TestFunctionalAcrossBackends:
    def test_matmul_matches_numpy(self, name, factory):
        device = factory()
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 4))
        np.testing.assert_allclose(device.matmul(a, b), a @ b, atol=1e-9)

    def test_complex_matmul(self, name, factory):
        device = factory()
        rng = np.random.default_rng(1)
        a = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        b = rng.standard_normal((4, 4)) + 1j * rng.standard_normal((4, 4))
        np.testing.assert_allclose(device.matmul(a, b), a @ b, atol=1e-9)

    def test_fft2_matches_numpy(self, name, factory):
        device = factory()
        rng = np.random.default_rng(2)
        x = rng.standard_normal((8, 8))
        np.testing.assert_allclose(device.fft2(x), np.fft.fft2(x), atol=1e-8)

    def test_ifft2_round_trip(self, name, factory):
        device = factory()
        rng = np.random.default_rng(3)
        x = rng.standard_normal((4, 6)) + 1j * rng.standard_normal((4, 6))
        np.testing.assert_allclose(device.ifft2(device.fft2(x)), x, atol=1e-8)

    def test_conv2d_circular_matches_direct(self, name, factory):
        from repro.fft import circular_convolve2d

        device = factory()
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 5))
        k = rng.standard_normal((5, 5))
        np.testing.assert_allclose(
            device.conv2d_circular(x, k), circular_convolve2d(x, k), atol=1e-8
        )

    def test_hadamard_ops(self, name, factory):
        device = factory()
        a = np.array([[2.0, 4.0]])
        b = np.array([[1.0, 2.0]])
        np.testing.assert_allclose(device.hadamard(a, b, "mul"), [[2.0, 8.0]])
        np.testing.assert_allclose(device.hadamard(a, b, "div"), [[2.0, 2.0]])
        np.testing.assert_allclose(device.hadamard(a, b, "add"), [[3.0, 6.0]])
        np.testing.assert_allclose(device.hadamard(a, b, "sub"), [[1.0, 2.0]])

    def test_transpose(self, name, factory):
        device = factory()
        x = np.arange(6.0).reshape(2, 3)
        np.testing.assert_array_equal(device.transpose(x), x.T)

    def test_stats_accumulate_and_reset(self, name, factory):
        device = factory()
        device.matmul(np.ones((4, 4)), np.ones((4, 4)))
        assert device.stats.seconds > 0
        assert device.stats.op_counts["matmul"] == 1
        harvested = device.take_stats()
        assert harvested.seconds > 0
        assert device.stats.seconds == 0.0

    def test_validation(self, name, factory):
        device = factory()
        with pytest.raises(ValueError):
            device.matmul(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError):
            device.hadamard(np.ones((2, 2)), np.ones((3, 3)))
        with pytest.raises(ValueError):
            device.hadamard(np.ones((2, 2)), np.ones((2, 2)), op="pow")
        with pytest.raises(ValueError):
            device.transpose(np.ones(3))
        with pytest.raises(ValueError):
            device.fft2(np.ones(3))

    def test_account_only_paths(self, name, factory):
        device = factory()
        seconds = device.account_matmul(64, 64, 64, count=3)
        assert seconds > 0
        assert device.stats.op_counts["matmul_accounted"] == 1
        assert device.account_elementwise(1000, count=2) > 0
        assert device.account_transfer(10_000) > 0


class TestDeviceStats:
    def test_merge(self):
        a = DeviceStats()
        a.record("x", 1.0, macs=10)
        b = DeviceStats()
        b.record("x", 2.0, macs=5)
        b.record("y", 0.5)
        a.merge(b)
        assert a.seconds == pytest.approx(3.5)
        assert a.macs == 15
        assert a.op_counts["x"] == 2
        assert a.op_seconds["y"] == pytest.approx(0.5)

    def test_copy_is_independent(self):
        a = DeviceStats()
        a.record("x", 1.0)
        c = a.copy()
        c.record("x", 1.0)
        assert a.seconds == 1.0
        assert c.seconds == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            DeviceStats().record("x", -1.0)


class TestTimingOrder:
    """The structural claim behind every table: CPU > GPU > TPU compute."""

    def test_matmul_cost_ordering_at_scale(self):
        cpu = CpuDevice()
        gpu = GpuDevice()
        tpu = TpuCore()  # full 256x256 MXU
        m = k = n = 1024
        assert cpu.matmul_seconds(m, k, n) > gpu.matmul_seconds(m, k, n)
        assert gpu.matmul_seconds(m, k, n) > tpu.matmul_seconds(m, k, n)

    def test_tpu_core_int8_beats_fp32_mode(self):
        int8 = TpuCore(TpuCoreConfig(mxu=MxuConfig(precision="int8")))
        fp32 = TpuCore(TpuCoreConfig(mxu=MxuConfig(precision="fp32")))
        assert int8.matmul_seconds(512, 512, 512) < fp32.matmul_seconds(512, 512, 512)

    def test_gpu_overhead_dominates_small_ops(self):
        gpu = GpuDevice()
        tiny = gpu.matmul_seconds(2, 2, 2)
        assert tiny == pytest.approx(gpu.config.kernel_launch_sec, rel=0.1)

    def test_cpu_energy_model(self):
        cpu = CpuDevice()
        assert cpu.energy_joules(2.0) == pytest.approx(2.0 * cpu.config.tdp_watts)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CpuConfig(efficiency=0.0)
        with pytest.raises(ValueError):
            GpuConfig(efficiency=1.5)
        with pytest.raises(ValueError):
            CpuConfig(cores=0)
        with pytest.raises(ValueError):
            GpuConfig(kernel_launch_sec=-1)


class TestTpuCore:
    def test_int8_core_quantizes_matmuls(self):
        from repro.hw import quantized_matmul

        core = tiny_tpu_core(precision="int8")
        rng = np.random.default_rng(5)
        a = rng.standard_normal((8, 8))
        b = rng.standard_normal((8, 8))
        np.testing.assert_allclose(
            core.matmul(a, b), quantized_matmul(a, b, bits=8), atol=1e-12
        )

    def test_trace_program_collects_instructions(self):
        from repro.hw import Opcode

        core = TpuCore(
            TpuCoreConfig(mxu=MxuConfig(rows=8, cols=8, precision="fp32")), trace=True
        )
        core.matmul(np.ones((4, 16)), np.ones((16, 8)))
        histogram = core.trace_program.opcode_histogram()
        assert histogram[Opcode.MATMUL] == 2  # two k-tiles
        assert histogram[Opcode.LOAD_WEIGHTS] == 2

    def test_utilization_bounded(self):
        core = tiny_tpu_core()
        core.matmul(np.ones((32, 8)), np.ones((8, 8)))
        assert 0.0 < core.utilization() <= 1.0


class TestTpuChip:
    def test_chip_has_configured_cores(self):
        chip = TpuChip(TpuChipConfig(num_cores=4))
        assert chip.num_cores == 4
        assert len(chip.cores) == 4

    def test_dispatch_and_feeds_accumulate(self):
        chip = TpuChip(TpuChipConfig(num_cores=2, dispatch_latency_sec=0.01,
                                     host_bandwidth_bytes_per_sec=1000.0))
        chip.dispatch()
        chip.infeed_seconds(500)
        chip.outfeed_seconds(250)
        assert chip.stats_seconds == pytest.approx(0.01 + 0.5 + 0.25)
        events = [name for name, _ in chip.event_log]
        assert events == ["dispatch", "infeed", "outfeed"]

    def test_cross_replica_sum_uses_all_cores_by_default(self):
        chip = TpuChip(TpuChipConfig(num_cores=8))
        t_all = chip.cross_replica_sum_seconds(1 << 20)
        chip.reset()
        t_two = chip.cross_replica_sum_seconds(1 << 20, num_cores=2)
        assert t_all != t_two

    def test_reset_clears_everything(self):
        chip = TpuChip(TpuChipConfig(num_cores=2))
        chip.dispatch()
        chip.cores[0].matmul(np.ones((4, 4)), np.ones((4, 4)))
        chip.reset()
        assert chip.stats_seconds == 0.0
        assert chip.total_core_seconds() == 0.0
        assert chip.event_log == []

    def test_core_second_aggregates(self):
        chip = TpuChip(TpuChipConfig(num_cores=2))
        chip.cores[0].matmul(np.ones((4, 4)), np.ones((4, 4)))
        assert chip.max_core_seconds() == chip.cores[0].stats.seconds
        assert chip.total_core_seconds() == chip.cores[0].stats.seconds

    def test_negative_feed_rejected(self):
        chip = TpuChip(TpuChipConfig(num_cores=1))
        with pytest.raises(ValueError):
            chip.infeed_seconds(-1)
        with pytest.raises(ValueError):
            chip.outfeed_seconds(-1)

    def test_invalid_chip_config(self):
        with pytest.raises(ValueError):
            TpuChipConfig(num_cores=0)
        with pytest.raises(ValueError):
            TpuChipConfig(dispatch_latency_sec=-1.0)


class TestHadamardCostModel:
    """Complex point-wise flops are op-dependent: mul/div cost 4 real
    flops per element, add/sub only 2 (two real adds)."""

    @pytest.mark.parametrize("name,factory", DEVICES)
    def test_complex_add_cheaper_than_complex_mul(self, name, factory):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64)) + 1j * rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64)) + 1j * rng.standard_normal((64, 64))
        device = factory()
        device.hadamard(a, b, op="mul")
        mul_seconds = device.take_stats().seconds
        device.hadamard(a, b, op="add")
        add_seconds = device.take_stats().seconds
        if name == "cpu":
            # The CPU roofline is memory-bound at these intensities, so
            # the cheaper flop count is hidden behind bandwidth.
            assert add_seconds <= mul_seconds
        else:
            assert add_seconds < mul_seconds
        device.hadamard(a, b, op="sub")
        assert device.take_stats().seconds == pytest.approx(add_seconds)
        device.hadamard(a, b, op="div")
        assert device.take_stats().seconds == pytest.approx(mul_seconds)

    def test_real_ops_unaffected(self):
        device = CpuDevice()
        a = np.ones((32, 32))
        device.hadamard(a, a, op="add")
        add_seconds = device.take_stats().seconds
        device.hadamard(a, a, op="mul")
        assert device.take_stats().seconds == pytest.approx(add_seconds)
