"""Synthetic datasets: structure, determinism, planted ground truth."""

import numpy as np
import pytest

from repro.data import (
    ATTACK_MODES,
    CifarLikeSpec,
    MiraiTraceDataset,
    MiraiTraceSpec,
    SyntheticCifar100,
    make_cat_image,
    normalize_images,
    one_hot,
    to_grayscale,
    train_test_indices,
)


class TestSyntheticCifar:
    def test_batch_shapes_and_range(self):
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=10), seed=0)
        images, labels = dataset.batch(20, seed=1)
        assert images.shape == (20, 3, 32, 32)
        assert labels.shape == (20,)
        assert images.min() >= 0.0 and images.max() <= 1.0
        assert images.dtype == np.float32

    def test_labels_cycle_through_classes(self):
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=4), seed=0)
        _, labels = dataset.batch(8)
        np.testing.assert_array_equal(labels, [0, 1, 2, 3, 0, 1, 2, 3])

    def test_determinism(self):
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=5), seed=3)
        a, _ = dataset.batch(6, seed=9)
        b, _ = dataset.batch(6, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=5), seed=3)
        a, _ = dataset.batch(6, seed=1)
        b, _ = dataset.batch(6, seed=2)
        assert not np.array_equal(a, b)

    def test_motif_block_is_in_grid(self):
        spec = CifarLikeSpec(num_classes=20, image_size=32, motif_size=8)
        dataset = SyntheticCifar100(spec, seed=0)
        for label in range(20):
            row, col = dataset.motif_block(label)
            assert 0 <= row < 4 and 0 <= col < 4

    def test_motif_region_has_high_contrast(self):
        """The planted motif must carry class-distinctive signal."""
        spec = CifarLikeSpec(num_classes=8, noise_level=0.05)
        dataset = SyntheticCifar100(spec, seed=1)
        rng = np.random.default_rng(2)
        label = 3
        row, col = dataset.motif_block(label)
        ms = spec.motif_size
        image_a = dataset.sample(label, rng)
        image_b = dataset.sample(label, rng)
        motif_a = image_a[:, row * ms : (row + 1) * ms, col * ms : (col + 1) * ms]
        motif_b = image_b[:, row * ms : (row + 1) * ms, col * ms : (col + 1) * ms]
        # The motif is deterministic per class (low variance across samples).
        assert np.abs(motif_a - motif_b).mean() < 0.05

    def test_classes_are_distinguishable(self):
        """Mean images of different classes differ substantially."""
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=3, noise_level=0.1), seed=0)
        rng = np.random.default_rng(5)
        means = [
            np.mean([dataset.sample(c, rng) for _ in range(8)], axis=0)
            for c in range(3)
        ]
        assert np.abs(means[0] - means[1]).mean() > 0.01
        assert np.abs(means[1] - means[2]).mean() > 0.01

    def test_train_test_split(self):
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=4), seed=0)
        train_x, train_y, test_x, test_y = dataset.train_test_split(8, 4)
        assert train_x.shape[0] == 8 and test_x.shape[0] == 4
        assert not np.array_equal(train_x[:4], test_x)

    def test_validation(self):
        with pytest.raises(ValueError):
            CifarLikeSpec(num_classes=0)
        with pytest.raises(ValueError):
            CifarLikeSpec(motif_size=64, image_size=32)
        dataset = SyntheticCifar100(CifarLikeSpec(num_classes=2))
        with pytest.raises(ValueError):
            dataset.sample(5, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dataset.batch(0)
        with pytest.raises(ValueError):
            dataset.batch(3, labels=np.array([0, 1]))


class TestMakeCatImage:
    def test_shape_and_blocks(self):
        image, face, ear = make_cat_image(size=32, block=8)
        assert image.shape == (32, 32)
        assert face == (2, 2)
        assert ear == (1, 2)

    def test_face_block_has_highest_energy(self):
        image, face, ear = make_cat_image(size=32, block=8)
        grid = image.reshape(4, 8, 4, 8).swapaxes(1, 2)
        block_energy = (grid**2).sum(axis=(2, 3))
        top = np.unravel_index(np.argmax(block_energy), block_energy.shape)
        assert tuple(top) == face

    def test_bad_block_size_rejected(self):
        with pytest.raises(ValueError):
            make_cat_image(size=32, block=5)


class TestMiraiTraces:
    def test_batch_shapes_and_labels(self):
        dataset = MiraiTraceDataset(MiraiTraceSpec(registers=8, cycles=8), seed=0)
        traces, labels, infos = dataset.batch(10)
        assert traces.shape == (10, 8, 8)
        np.testing.assert_array_equal(labels, [0, 1] * 5)
        assert len(infos) == 10

    def test_malicious_traces_carry_attack_metadata(self):
        dataset = MiraiTraceDataset(seed=1)
        _, labels, infos = dataset.batch(6)
        for label, info in zip(labels, infos):
            if label == 1:
                assert info["attack_cycle"] == dataset.attack_cycle
                assert info["attack_mode"] in ATTACK_MODES
            else:
                assert info["attack_cycle"] is None

    def test_attack_cycle_is_interior(self):
        for seed in range(5):
            dataset = MiraiTraceDataset(MiraiTraceSpec(cycles=16), seed=seed)
            assert 1 <= dataset.attack_cycle < 15

    def test_attack_column_is_distinctive(self):
        """The planted column must dominate benign activity levels."""
        spec = MiraiTraceSpec(registers=8, cycles=8, noise_level=0.02)
        dataset = MiraiTraceDataset(spec, seed=2)
        rng = np.random.default_rng(3)
        trace, info = dataset.sample(True, rng)
        register = info["attack_register"]
        cycle = info["attack_cycle"]
        others = np.delete(trace[register], cycle)
        assert trace[register, cycle] > others.max()

    def test_determinism(self):
        dataset = MiraiTraceDataset(seed=4)
        a, _, _ = dataset.batch(4, seed=7)
        b, _, _ = dataset.batch(4, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_as_images_adds_channel(self):
        dataset = MiraiTraceDataset()
        traces, _, _ = dataset.batch(4)
        images = dataset.as_images(traces)
        assert images.shape == (4, 1, 8, 8)

    def test_format_table_rendering(self):
        dataset = MiraiTraceDataset(seed=5)
        trace, _ = dataset.sample(True, np.random.default_rng(0))
        weights = np.linspace(0, 1, 8)
        text = dataset.format_table(trace, weights=weights)
        assert "R0" in text and "C0" in text and "wgt" in text
        assert "0x" in text

    def test_format_table_validation(self):
        dataset = MiraiTraceDataset()
        with pytest.raises(ValueError):
            dataset.format_table(np.ones(4))
        trace, _ = dataset.sample(False, np.random.default_rng(0))
        with pytest.raises(ValueError):
            dataset.format_table(trace, weights=np.ones(2))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MiraiTraceSpec(registers=0)
        with pytest.raises(ValueError):
            MiraiTraceSpec(attack_register=10, registers=4)


class TestLoaderHelpers:
    def test_one_hot(self):
        encoded = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_validation(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)
        with pytest.raises(ValueError):
            one_hot(np.ones((2, 2)), 3)

    def test_normalize_images(self):
        rng = np.random.default_rng(0)
        images = rng.uniform(0, 255, size=(8, 3, 4, 4))
        normalized = normalize_images(images)
        np.testing.assert_allclose(normalized.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(normalized.std(axis=(0, 2, 3)), 1.0, atol=1e-10)

    def test_to_grayscale(self):
        images = np.ones((2, 3, 4, 4))
        gray = to_grayscale(images)
        assert gray.shape == (2, 4, 4)
        np.testing.assert_allclose(gray, 1.0)

    def test_train_test_indices_disjoint(self):
        train, test = train_test_indices(100, 0.2, seed=0)
        assert len(train) == 80 and len(test) == 20
        assert set(train).isdisjoint(set(test))

    def test_loader_validation(self):
        with pytest.raises(ValueError):
            train_test_indices(0, 0.5)
        with pytest.raises(ValueError):
            train_test_indices(10, 1.5)
        with pytest.raises(ValueError):
            to_grayscale(np.ones((3, 4, 4)))
        with pytest.raises(ValueError):
            normalize_images(np.ones((3, 4)))
