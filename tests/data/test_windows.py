"""Trace windowing utilities."""

import numpy as np
import pytest

from repro.data import (
    MiraiTraceDataset,
    MiraiTraceSpec,
    TraceWindow,
    locate_cycle,
    pad_trace,
    sliding_windows,
)


class TestSlidingWindows:
    def test_non_overlapping_default(self):
        trace = np.arange(32.0).reshape(2, 16)
        windows = sliding_windows(trace, window_cycles=4)
        assert len(windows) == 4
        assert windows[0].start_cycle == 0
        assert windows[-1].start_cycle == 12
        np.testing.assert_array_equal(windows[1].data, trace[:, 4:8])

    def test_overlapping_stride(self):
        trace = np.ones((2, 10))
        windows = sliding_windows(trace, window_cycles=4, stride=2)
        starts = [w.start_cycle for w in windows]
        assert starts == [0, 2, 4, 6]

    def test_partial_tail_dropped(self):
        trace = np.ones((2, 10))
        windows = sliding_windows(trace, window_cycles=4)
        assert len(windows) == 2  # cycles 8..9 dropped

    def test_absolute_cycle_mapping(self):
        window = TraceWindow(data=np.ones((2, 4)), start_cycle=8)
        assert window.to_absolute_cycle(3) == 11
        assert window.end_cycle == 12
        with pytest.raises(IndexError):
            window.to_absolute_cycle(4)

    def test_validation(self):
        with pytest.raises(ValueError):
            sliding_windows(np.ones(8), 4)
        with pytest.raises(ValueError):
            sliding_windows(np.ones((2, 8)), 0)
        with pytest.raises(ValueError):
            sliding_windows(np.ones((2, 8)), 4, stride=0)


class TestLocateCycle:
    def test_single_window(self):
        windows = [TraceWindow(np.ones((2, 4)), start_cycle=0)]
        scores = [np.array([0.1, 0.9, 0.2, 0.0])]
        cycle, score = locate_cycle(windows, scores)
        assert cycle == 1
        assert score == pytest.approx(0.9)

    def test_overlapping_windows_vote(self):
        windows = [
            TraceWindow(np.ones((2, 4)), start_cycle=0),
            TraceWindow(np.ones((2, 4)), start_cycle=2),
        ]
        # Cycle 3 scores 0.4 in each window: combined 0.8 beats any single.
        scores = [np.array([0.0, 0.1, 0.2, 0.4]), np.array([0.1, 0.4, 0.3, 0.1])]
        cycle, score = locate_cycle(windows, scores)
        assert cycle == 3
        assert score == pytest.approx(0.8)

    def test_validation(self):
        windows = [TraceWindow(np.ones((2, 4)), start_cycle=0)]
        with pytest.raises(ValueError):
            locate_cycle(windows, [])
        with pytest.raises(ValueError):
            locate_cycle(windows, [np.ones(3)])
        with pytest.raises(ValueError):
            locate_cycle([], [])


class TestPadTrace:
    def test_pads_to_multiple(self):
        padded = pad_trace(np.ones((2, 10)), window_cycles=4)
        assert padded.shape == (2, 12)
        np.testing.assert_array_equal(padded[:, 10:], np.zeros((2, 2)))

    def test_exact_multiple_untouched(self):
        trace = np.ones((2, 8))
        padded = pad_trace(trace, 4)
        np.testing.assert_array_equal(padded, trace)
        assert padded is not trace  # copy, not alias

    def test_custom_fill(self):
        padded = pad_trace(np.ones((1, 3)), 4, fill_value=7.0)
        assert padded[0, 3] == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pad_trace(np.ones(8), 4)
        with pytest.raises(ValueError):
            pad_trace(np.ones((2, 8)), 0)


class TestEndToEndLocalization:
    def test_attack_cycle_found_in_long_trace(self):
        """Windowed interpretation localizes the attack cycle in a trace
        longer than the detector's input window."""
        from repro.core import ConvolutionDistiller, column_contributions
        from repro.fft import fft_circular_convolve2d

        spec = MiraiTraceSpec(registers=8, cycles=8)
        dataset = MiraiTraceDataset(spec, seed=5)
        rng = np.random.default_rng(5)
        detector_kernel = rng.standard_normal((8, 8))

        fit_traces = np.stack([dataset.sample(i % 2 == 1, rng)[0] for i in range(12)])
        fit_outputs = np.stack(
            [fft_circular_convolve2d(t, detector_kernel) for t in fit_traces]
        )
        distiller = ConvolutionDistiller(eps=1e-6).fit(fit_traces, fit_outputs)

        # Long trace: benign activity with one malicious window spliced in.
        benign_a, _ = dataset.sample(False, rng)
        malicious, info = dataset.sample(True, rng)
        benign_b, _ = dataset.sample(False, rng)
        long_trace = np.concatenate([benign_a, malicious, benign_b], axis=1)
        true_cycle = 8 + info["attack_cycle"]

        windows = sliding_windows(long_trace, window_cycles=8)
        scores = []
        for window in windows:
            output = fft_circular_convolve2d(window.data, detector_kernel)
            scores.append(column_contributions(window.data, distiller.kernel_, output))
        found_cycle, _ = locate_cycle(windows, scores)
        assert found_cycle == true_cycle
