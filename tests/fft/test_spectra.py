"""Tests for the process-level kernel-spectrum cache."""

import threading

import numpy as np
import pytest

from repro.fft import (
    KernelSpectrum,
    KernelSpectrumCache,
    clear_kernel_spectrum_cache,
    kernel_digest,
    kernel_spectrum,
    kernel_spectrum_cache,
    kernel_spectrum_cache_info,
    set_kernel_spectrum_cache_enabled,
)
from repro.fft.fft2d import fft2_batch, rfft2_batch


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_kernel_spectrum_cache()
    yield
    clear_kernel_spectrum_cache()
    set_kernel_spectrum_cache_enabled(True)


class FakePrecision:
    name = "fake3"

    def apply(self, array):
        array = np.asarray(array)
        if np.iscomplexobj(array):
            return np.round(array.real, 3) + 1j * np.round(array.imag, 3)
        return np.round(array, 3)


class TestKernelDigest:
    def test_equal_bytes_share_a_digest(self):
        a = np.arange(16.0).reshape(4, 4)
        assert kernel_digest(a) == kernel_digest(a.copy())

    def test_content_shape_and_dtype_all_distinguish(self):
        a = np.arange(16.0).reshape(4, 4)
        flipped = a.copy()
        flipped[0, 0] += 1e-12
        assert kernel_digest(a) != kernel_digest(flipped)
        assert kernel_digest(a) != kernel_digest(a.reshape(2, 8))
        assert kernel_digest(a) != kernel_digest(a.astype(np.float32))

    def test_non_contiguous_views_digest_by_content(self):
        a = np.arange(32.0).reshape(4, 8)
        view = a[:, ::2]
        assert kernel_digest(view) == kernel_digest(view.copy())


class TestKernelSpectrumRecord:
    def test_validates_kind(self):
        with pytest.raises(ValueError, match="kind"):
            KernelSpectrum(np.ones((4, 3), dtype=complex), "diagonal", (4, 4))

    def test_validates_trailing_shape(self):
        with pytest.raises(ValueError, match="trailing shape"):
            KernelSpectrum(np.ones((4, 4), dtype=complex), "half", (4, 4))
        # (4, 3) is the right half-spectrum shape for a (4, 4) plane.
        KernelSpectrum(np.ones((4, 3), dtype=complex), "half", (4, 4))
        KernelSpectrum(np.ones((4, 4), dtype=complex), "full", (4, 4))


class TestProcessCache:
    def test_hit_returns_same_transform_once(self):
        rng = np.random.default_rng(0)
        k = rng.standard_normal((8, 8))
        first = kernel_spectrum(k, real=True)
        second = kernel_spectrum(k.copy(), real=True)
        np.testing.assert_array_equal(first.array, second.array)
        info = kernel_spectrum_cache_info()
        assert info["kernel_transforms"] == 1
        assert info["hits"] >= 1

    def test_half_and_full_are_separate_entries(self):
        rng = np.random.default_rng(1)
        k = rng.standard_normal((8, 8))
        half = kernel_spectrum(k, real=True)
        full = kernel_spectrum(k, real=False)
        assert half.kind == "half" and full.kind == "full"
        assert half.array.shape == (8, 5)
        assert full.array.shape == (8, 8)
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 2
        np.testing.assert_allclose(full.array[:, :5], half.array, atol=1e-12)

    def test_results_match_direct_transforms(self):
        rng = np.random.default_rng(2)
        stack = rng.standard_normal((3, 8, 8))
        np.testing.assert_array_equal(
            kernel_spectrum(stack, real=True).array, rfft2_batch(stack)
        )
        np.testing.assert_array_equal(
            kernel_spectrum(stack, real=False).array, fft2_batch(stack)
        )

    def test_quantized_entry_derives_without_retransform(self):
        rng = np.random.default_rng(3)
        k = rng.standard_normal((8, 8))
        spec = FakePrecision()
        raw = kernel_spectrum(k, real=True)
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1
        quantized = kernel_spectrum(k, real=True, precision=spec)
        # The quantized entry was derived from the cached raw spectrum:
        # no second transform, bit-identical to quantizing fresh.
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1
        assert quantized.precision_name == "fake3"
        np.testing.assert_array_equal(quantized.array, spec.apply(raw.array))
        # A repeat is a plain hit.
        kernel_spectrum(k, real=True, precision=spec)
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1

    def test_quantized_first_also_caches_raw(self):
        rng = np.random.default_rng(4)
        k = rng.standard_normal((8, 8))
        kernel_spectrum(k, real=True, precision=FakePrecision())
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1
        kernel_spectrum(k, real=True)  # raw entry already present
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1

    def test_cached_arrays_are_read_only(self):
        k = np.ones((4, 4))
        spectrum = kernel_spectrum(k, real=True)
        with pytest.raises(ValueError):
            spectrum.array[0, 0] = 0

    def test_disabled_cache_computes_fresh_identical(self):
        rng = np.random.default_rng(5)
        k = rng.standard_normal((8, 8))
        cached = kernel_spectrum(k, real=True)
        previous = set_kernel_spectrum_cache_enabled(False)
        try:
            assert previous is True
            fresh = kernel_spectrum(k, real=True)
        finally:
            set_kernel_spectrum_cache_enabled(previous)
        np.testing.assert_array_equal(cached.array, fresh.array)
        # Disabled lookups touch no counters.
        assert kernel_spectrum_cache_info()["kernel_transforms"] == 1

    def test_clear_resets_entries_and_counters(self):
        kernel_spectrum(np.ones((4, 4)), real=True)
        clear_kernel_spectrum_cache()
        info = kernel_spectrum_cache_info()
        assert info["entries"] == 0
        assert info["current_bytes"] == 0
        assert info["hits"] == info["misses"] == info["kernel_transforms"] == 0


class TestEviction:
    def test_lru_eviction_under_byte_budget(self):
        plane = np.zeros((8, 8))
        entry_bytes = rfft2_batch(plane).nbytes
        cache = KernelSpectrumCache(max_bytes=3 * entry_bytes)
        for i in range(5):
            cache.put((f"k{i}", "half", None), rfft2_batch(plane + i))
        info = cache.info()
        assert info["entries"] == 3
        assert info["evictions"] == 2
        assert info["current_bytes"] <= cache.max_bytes
        # Oldest entries went first.
        assert cache.get(("k0", "half", None)) is None
        assert cache.get(("k4", "half", None)) is not None

    def test_recently_used_entries_survive(self):
        plane = np.zeros((8, 8))
        entry_bytes = rfft2_batch(plane).nbytes
        cache = KernelSpectrumCache(max_bytes=2 * entry_bytes)
        cache.put(("a", "half", None), rfft2_batch(plane))
        cache.put(("b", "half", None), rfft2_batch(plane + 1))
        assert cache.get(("a", "half", None)) is not None  # refresh "a"
        cache.put(("c", "half", None), rfft2_batch(plane + 2))  # evicts "b"
        assert cache.get(("a", "half", None)) is not None
        assert cache.get(("b", "half", None)) is None

    def test_oversized_entry_is_not_cached(self):
        cache = KernelSpectrumCache(max_bytes=64)
        assert cache.put(("big", "full", None), np.zeros((8, 8), dtype=complex)) is False
        assert len(cache) == 0

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError):
            KernelSpectrumCache(max_bytes=0)


class TestThreadSafety:
    def test_concurrent_lookups_agree_and_stay_consistent(self):
        rng = np.random.default_rng(6)
        kernels = [rng.standard_normal((16, 16)) for _ in range(4)]
        expected = [rfft2_batch(k) for k in kernels]
        errors = []

        def hammer(seed):
            local = np.random.default_rng(seed)
            try:
                for _ in range(50):
                    i = int(local.integers(len(kernels)))
                    result = kernel_spectrum(kernels[i], real=True)
                    if not np.array_equal(result.array, expected[i]):
                        raise AssertionError(f"kernel {i} spectrum corrupted")
            except Exception as exc:  # pragma: no cover - only on failure
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        info = kernel_spectrum_cache_info()
        assert info["entries"] == len(kernels)
        # A racing miss may transform the same kernel twice (benign),
        # but never more than once per thread per kernel.
        assert len(kernels) <= info["kernel_transforms"] <= 8 * len(kernels)
        assert kernel_spectrum_cache() is not None
