"""Independent-oracle checks: scipy and large/awkward transform sizes."""

import numpy as np
import pytest

from repro.fft import fft, fft2, fft_circular_convolve2d, ifft, irfft, rfft, rfft2

scipy_fft = pytest.importorskip("scipy.fft")


class TestScipyOracle:
    @pytest.mark.parametrize("n", [64, 100, 127, 128, 243, 251, 256, 1000])
    def test_1d_matches_scipy(self, n):
        """Primes (127, 251), prime powers (243) and composites all take
        the correct code path and agree with an independent library."""
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), scipy_fft.fft(x), atol=1e-7)

    @pytest.mark.parametrize("shape", [(64, 64), (100, 50), (127, 128), (31, 37)])
    def test_2d_matches_scipy(self, shape):
        rng = np.random.default_rng(shape[0])
        x = rng.standard_normal(shape)
        np.testing.assert_allclose(fft2(x), scipy_fft.fft2(x), atol=1e-7)

    @pytest.mark.parametrize("n", [128, 251, 500])
    def test_inverse_matches_scipy(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft(x), scipy_fft.ifft(x), atol=1e-9)

    def test_large_power_of_two(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096)
        np.testing.assert_allclose(fft(x), scipy_fft.fft(x), atol=1e-6)

    def test_conv_against_scipy_fftconvolve_circular(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((32, 32))
        k = rng.standard_normal((32, 32))
        expected = np.real(scipy_fft.ifft2(scipy_fft.fft2(x) * scipy_fft.fft2(k)))
        np.testing.assert_allclose(fft_circular_convolve2d(x, k), expected, atol=1e-8)


class TestRealTransformOracles:
    """The half-spectrum hot path against numpy *and* scipy."""

    @pytest.mark.parametrize("n", [64, 100, 127, 128, 243, 251, 256, 1000])
    def test_rfft_matches_numpy_and_scipy(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        ours = rfft(x)
        np.testing.assert_allclose(ours, np.fft.rfft(x), atol=1e-7)
        np.testing.assert_allclose(ours, scipy_fft.rfft(x), atol=1e-7)

    @pytest.mark.parametrize("shape", [(64, 64), (100, 50), (127, 128), (31, 37)])
    def test_rfft2_matches_numpy(self, shape):
        rng = np.random.default_rng(shape[0])
        x = rng.standard_normal(shape)
        np.testing.assert_allclose(rfft2(x), np.fft.rfft2(x), atol=1e-7)

    @pytest.mark.parametrize("n", [128, 251, 500, 501])
    def test_irfft_matches_numpy(self, n):
        rng = np.random.default_rng(n)
        spectrum = np.fft.rfft(rng.standard_normal(n))
        np.testing.assert_allclose(
            irfft(spectrum, n=n), np.fft.irfft(spectrum, n=n), atol=1e-9
        )

    def test_large_power_of_two_rfft(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(4096)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-6)


class TestNumericalStability:
    def test_large_dynamic_range(self):
        x = np.array([1e12, 1e-12, -1e12, 1e-12] * 8)
        spectrum = fft(x)
        np.testing.assert_allclose(ifft(spectrum), x, rtol=1e-9)

    def test_long_bluestein_accuracy(self):
        """Bluestein's chirp padding must not degrade for long primes."""
        n = 1009  # prime
        rng = np.random.default_rng(2)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-6)

    def test_dc_only_signal(self):
        x = np.full(64, 3.0)
        spectrum = fft(x)
        assert spectrum[0] == pytest.approx(192.0)
        np.testing.assert_allclose(spectrum[1:], 0.0, atol=1e-10)

    def test_single_tone(self):
        n = 128
        tone = np.exp(2j * np.pi * 5 * np.arange(n) / n)
        spectrum = fft(tone)
        assert abs(spectrum[5]) == pytest.approx(n, rel=1e-10)
        mask = np.ones(n, dtype=bool)
        mask[5] = False
        np.testing.assert_allclose(spectrum[mask], 0.0, atol=1e-9)
