"""Tests for the real-input half-spectrum transforms (rfft/irfft and 2-D forms)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft, irfft, irfft2, irfft2_batch, rfft, rfft2, rfft2_batch
from repro.fft.fft2d import fft2_batch

POWER_OF_TWO_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
BLUESTEIN_SIZES = [3, 5, 6, 7, 9, 10, 12, 15, 17, 31, 33, 100]
NORMS = ["backward", "ortho", "forward"]


class TestRfftForward:
    @pytest.mark.parametrize("n", POWER_OF_TWO_SIZES + BLUESTEIN_SIZES)
    def test_matches_numpy_rfft(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-9)

    @pytest.mark.parametrize("n", [8, 12, 64, 100])
    @pytest.mark.parametrize("norm", NORMS)
    def test_norms_match_numpy(self, n, norm):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            rfft(x, norm=norm), np.fft.rfft(x, norm=norm), atol=1e-9
        )

    @pytest.mark.parametrize("n", [4, 7, 16, 30])
    def test_matches_full_fft_head(self, n):
        """The half spectrum is the first ``n//2 + 1`` bins of the full DFT."""
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft(x), fft(x)[: n // 2 + 1], atol=1e-9)

    def test_output_bin_count(self):
        for n in [1, 2, 3, 8, 9, 100]:
            assert rfft(np.ones(n)).shape == (n // 2 + 1,)

    def test_batched_rows_bit_identical_to_single(self):
        """Vectorizing over a batch axis must not change any bits --
        the loop/dense/streamed equivalence rests on this."""
        rng = np.random.default_rng(0)
        stack = rng.standard_normal((5, 32))
        batched = rfft(stack, axis=-1)
        for row, expected in zip(stack, batched):
            np.testing.assert_array_equal(rfft(row), expected)

    def test_axis_zero(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((16, 3))
        np.testing.assert_allclose(
            rfft(x, axis=0), np.fft.rfft(x, axis=0), atol=1e-9
        )

    def test_rejects_complex_input(self):
        with pytest.raises(ValueError, match="rfft requires real input"):
            rfft(np.ones(8, dtype=np.complex128))

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            rfft(np.ones((2, 0)))

    def test_rejects_bad_norm(self):
        with pytest.raises(ValueError):
            rfft(np.ones(8), norm="sideways")


class TestIrfftInverse:
    @pytest.mark.parametrize("n", POWER_OF_TWO_SIZES + BLUESTEIN_SIZES)
    def test_round_trip_even_and_odd(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        recovered = irfft(rfft(x), n=n)
        assert recovered.dtype == np.float64
        np.testing.assert_allclose(recovered, x, atol=1e-9)

    @pytest.mark.parametrize("norm", NORMS)
    @pytest.mark.parametrize("n", [8, 15, 64])
    def test_round_trip_every_norm(self, n, norm):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(irfft(rfft(x, norm=norm), n=n, norm=norm), x, atol=1e-9)

    @pytest.mark.parametrize("n", [8, 13, 100])
    def test_matches_numpy_irfft(self, n):
        rng = np.random.default_rng(n)
        spectrum = np.fft.rfft(rng.standard_normal(n))
        np.testing.assert_allclose(
            irfft(spectrum, n=n), np.fft.irfft(spectrum, n=n), atol=1e-9
        )

    def test_default_length_is_even(self):
        """Without ``n`` the inverse assumes an even signal, like numpy."""
        x = np.arange(10.0)
        np.testing.assert_allclose(irfft(rfft(x)), x, atol=1e-9)

    def test_odd_length_needs_explicit_n(self):
        x = np.arange(9.0)
        np.testing.assert_allclose(irfft(rfft(x), n=9), x, atol=1e-9)

    def test_rejects_inconsistent_n(self):
        with pytest.raises(ValueError, match="inconsistent"):
            irfft(np.ones(5, dtype=np.complex128), n=12)

    def test_rejects_empty_axis(self):
        with pytest.raises(ValueError):
            irfft(np.ones((2, 0), dtype=np.complex128))

    def test_length_one(self):
        np.testing.assert_allclose(irfft(rfft(np.array([4.25])), n=1), [4.25])


class TestRfftProperties:
    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_numpy_for_any_length(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(rfft(x), np.fft.rfft(x), atol=1e-7)

    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_any_length(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(irfft(rfft(x), n=n), x, atol=1e-7)

    @given(
        n=st.integers(min_value=2, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_hermitian_packing(self, n, seed):
        """The bins rfft drops are exactly the conjugate mirror of the
        bins it keeps: X[n-k] == conj(X[k])."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        full = fft(x)
        half = rfft(x)
        reconstructed = np.empty(n, dtype=np.complex128)
        reconstructed[: n // 2 + 1] = half
        reconstructed[n // 2 + 1 :] = np.conj(half[1 : (n + 1) // 2][::-1])
        np.testing.assert_allclose(reconstructed, full, atol=1e-7)


class TestRfft2d:
    @pytest.mark.parametrize("shape", [(8, 8), (8, 7), (7, 8), (5, 9), (16, 12)])
    def test_matches_numpy_rfft2(self, shape):
        rng = np.random.default_rng(shape[0] * 31 + shape[1])
        x = rng.standard_normal(shape)
        np.testing.assert_allclose(rfft2(x), np.fft.rfft2(x), atol=1e-8)

    @pytest.mark.parametrize("shape", [(8, 8), (6, 9), (5, 4)])
    def test_round_trip(self, shape):
        rng = np.random.default_rng(shape[0])
        x = rng.standard_normal(shape)
        np.testing.assert_allclose(irfft2(rfft2(x), n=shape[1]), x, atol=1e-9)

    def test_matches_full_fft2_head(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((8, 8))
        np.testing.assert_allclose(
            rfft2(x), fft2_batch(x)[:, : 8 // 2 + 1], atol=1e-9
        )

    def test_batch_planes_bit_identical_to_single(self):
        rng = np.random.default_rng(6)
        stack = rng.standard_normal((4, 8, 6))
        batched = rfft2_batch(stack)
        for plane, expected in zip(stack, batched):
            np.testing.assert_array_equal(rfft2(plane), expected)

    def test_batch_round_trip(self):
        rng = np.random.default_rng(7)
        stack = rng.standard_normal((3, 6, 7))
        np.testing.assert_allclose(
            irfft2_batch(rfft2_batch(stack), n=7), stack, atol=1e-9
        )

    def test_rejects_complex_plane(self):
        with pytest.raises(ValueError):
            rfft2(np.ones((4, 4), dtype=np.complex128))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            rfft2(np.ones(8))
        with pytest.raises(ValueError):
            rfft2_batch(np.ones(8))
