"""Unit and property tests for the from-scratch 1-D FFT."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import bit_reversal_permutation, fft, ifft, is_power_of_two, rfft
from repro.fft.fft import (
    clear_fft_plan_cache,
    fft_plan_cache_info,
    next_power_of_two,
)

POWER_OF_TWO_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 256]
BLUESTEIN_SIZES = [3, 5, 6, 7, 9, 10, 12, 15, 17, 31, 33, 100]


class TestPowersOfTwoPath:
    @pytest.mark.parametrize("n", POWER_OF_TWO_SIZES)
    def test_matches_numpy_real_input(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    @pytest.mark.parametrize("n", POWER_OF_TWO_SIZES)
    def test_matches_numpy_complex_input(self, n):
        rng = np.random.default_rng(n + 1)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-9)

    def test_batched_input_along_last_axis(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((5, 3, 16))
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-9)

    def test_axis_argument(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 5))
        np.testing.assert_allclose(fft(x, axis=0), np.fft.fft(x, axis=0), atol=1e-9)


class TestBluesteinPath:
    @pytest.mark.parametrize("n", BLUESTEIN_SIZES)
    def test_matches_numpy_real_input(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)

    @pytest.mark.parametrize("n", BLUESTEIN_SIZES)
    def test_matches_numpy_complex_input(self, n):
        rng = np.random.default_rng(n + 7)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-8)

    def test_batched_bluestein(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 12))
        np.testing.assert_allclose(fft(x), np.fft.fft(x, axis=-1), atol=1e-8)


class TestInverse:
    @pytest.mark.parametrize("n", POWER_OF_TWO_SIZES + BLUESTEIN_SIZES)
    @pytest.mark.parametrize("norm", ["backward", "ortho", "forward"])
    def test_round_trip(self, n, norm):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft(fft(x, norm=norm), norm=norm), x, atol=1e-8)

    @pytest.mark.parametrize("n", [4, 12, 16])
    def test_matches_numpy_ifft(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft(x), np.fft.ifft(x), atol=1e-9)


class TestNormalization:
    @pytest.mark.parametrize("norm", ["backward", "ortho", "forward"])
    def test_matches_numpy_norm(self, norm):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(16)
        np.testing.assert_allclose(
            fft(x, norm=norm), np.fft.fft(x, norm=norm), atol=1e-9
        )

    def test_ortho_preserves_energy(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(64)
        spectrum = fft(x, norm="ortho")
        np.testing.assert_allclose(
            np.sum(np.abs(spectrum) ** 2), np.sum(np.abs(x) ** 2), rtol=1e-10
        )


class TestValidation:
    def test_empty_axis_raises(self):
        with pytest.raises(ValueError):
            fft(np.zeros((3, 0)))
        with pytest.raises(ValueError):
            ifft(np.zeros(0))

    def test_scalar_raises(self):
        with pytest.raises(ValueError):
            fft(np.float64(3.0))

    def test_bad_norm_raises(self):
        with pytest.raises(ValueError):
            fft(np.ones(4), norm="unitary")
        with pytest.raises(ValueError):
            ifft(np.ones(4), norm="unitary")


class TestHelpers:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(12)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(5) == 8
        assert next_power_of_two(16) == 16
        with pytest.raises(ValueError):
            next_power_of_two(0)

    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_bit_reversal_is_an_involution(self, n):
        perm = bit_reversal_permutation(n)
        np.testing.assert_array_equal(perm[perm], np.arange(n))

    def test_bit_reversal_known_case(self):
        np.testing.assert_array_equal(
            bit_reversal_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_bit_reversal_requires_power_of_two(self):
        with pytest.raises(ValueError):
            bit_reversal_permutation(6)

    def test_plan_cache_populates_and_clears(self):
        clear_fft_plan_cache()
        fft(np.ones(32))
        rfft(np.ones(32))
        info = fft_plan_cache_info()
        assert info["twiddle_plans"] >= 1
        assert info["bit_reversal_tables"] >= 1
        assert info["rfft_plans"] >= 1
        clear_fft_plan_cache()
        info = fft_plan_cache_info()
        assert info["twiddle_plans"] == 0
        assert info["bit_reversal_tables"] == 0
        assert info["rfft_plans"] == 0
        # Registered sibling caches (the kernel-spectrum cache) are
        # covered by the same entry points.
        assert info["kernel_spectra"] == 0


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_agrees_with_numpy_for_any_length(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(fft(x), np.fft.fft(x), atol=1e-7)

    @given(
        n=st.integers(min_value=1, max_value=96),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_round_trip_for_any_length(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-7)

    @given(
        n=st.sampled_from([4, 8, 16, 12, 20]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_linearity(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        y = rng.standard_normal(n)
        alpha, beta = rng.standard_normal(2)
        np.testing.assert_allclose(
            fft(alpha * x + beta * y), alpha * fft(x) + beta * fft(y), atol=1e-8
        )

    @given(
        n=st.sampled_from([4, 8, 16, 32, 12, 30]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_parseval(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        spectrum = fft(x)
        np.testing.assert_allclose(
            np.sum(np.abs(spectrum) ** 2) / n, np.sum(x**2), rtol=1e-8
        )

    @given(
        n=st.sampled_from([8, 16, 12, 24]),
        shift=st.integers(min_value=0, max_value=23),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_shift_theorem(self, n, shift, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        shifted_spectrum = fft(np.roll(x, shift % n))
        phase = np.exp(-2j * np.pi * np.arange(n) * (shift % n) / n)
        np.testing.assert_allclose(shifted_spectrum, fft(x) * phase, atol=1e-8)

    @given(
        n=st.sampled_from([4, 8, 16, 10, 18]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_real_input_conjugate_symmetry(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        spectrum = fft(x)
        # X[n-k] == conj(X[k]) for real input.
        for k in range(1, n):
            np.testing.assert_allclose(
                spectrum[n - k], np.conj(spectrum[k]), atol=1e-8
            )
