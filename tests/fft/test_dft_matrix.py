"""Unit tests for DFT matrix construction and its algebraic properties."""

import numpy as np
import pytest

from repro.fft import (
    clear_dft_matrix_cache,
    dft_matrix,
    dft_matrix_cache_info,
    idft_matrix,
)

SIZES = [1, 2, 3, 4, 5, 7, 8, 12, 16, 31, 32, 64]


@pytest.mark.parametrize("n", SIZES)
def test_backward_matrix_matches_definition(n):
    w = dft_matrix(n)
    m, k = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    expected = np.exp(-2j * np.pi * m * k / n)
    np.testing.assert_allclose(w, expected, atol=1e-12)


@pytest.mark.parametrize("n", SIZES)
def test_matrix_is_symmetric(n):
    w = dft_matrix(n)
    np.testing.assert_allclose(w, w.T, atol=0)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("norm", ["backward", "ortho", "forward"])
def test_synthesis_inverts_analysis(n, norm):
    product = idft_matrix(n, norm) @ dft_matrix(n, norm)
    np.testing.assert_allclose(product, np.eye(n), atol=1e-10)


@pytest.mark.parametrize("n", SIZES)
def test_ortho_matrix_is_unitary(n):
    w = dft_matrix(n, norm="ortho")
    np.testing.assert_allclose(w @ w.conj().T, np.eye(n), atol=1e-10)


@pytest.mark.parametrize("n", [2, 4, 8, 16])
def test_matrix_application_matches_numpy_fft(n):
    rng = np.random.default_rng(7)
    x = rng.standard_normal(n)
    np.testing.assert_allclose(dft_matrix(n) @ x, np.fft.fft(x), atol=1e-10)


def test_ortho_matches_paper_scaling():
    # Paper Eq. 9: X[k] = (1/sqrt(M)) sum x[m] e^{-j 2 pi mk/M}.
    n = 8
    rng = np.random.default_rng(11)
    x = rng.standard_normal(n)
    np.testing.assert_allclose(
        dft_matrix(n, norm="ortho") @ x, np.fft.fft(x, norm="ortho"), atol=1e-10
    )


def test_invalid_size_raises():
    with pytest.raises(ValueError):
        dft_matrix(0)
    with pytest.raises(ValueError):
        dft_matrix(-3)
    with pytest.raises(TypeError):
        dft_matrix(3.5)


def test_invalid_norm_raises():
    with pytest.raises(ValueError):
        dft_matrix(4, norm="bogus")


def test_cache_returns_same_object_and_counts_hits():
    clear_dft_matrix_cache()
    first = dft_matrix(16)
    second = dft_matrix(16)
    assert first is second
    info = dft_matrix_cache_info()
    assert info["hits"] >= 1
    assert info["entries"] >= 1


def test_cached_matrix_is_read_only():
    w = dft_matrix(8)
    with pytest.raises(ValueError):
        w[0, 0] = 0.0


def test_clear_cache_resets_counters():
    dft_matrix(32)
    clear_dft_matrix_cache()
    info = dft_matrix_cache_info()
    assert info == {"entries": 0, "hits": 0, "misses": 0}
