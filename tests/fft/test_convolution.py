"""Tests for convolution: the convolution theorem is the paper's Eq. 3."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import (
    circular_convolve,
    circular_convolve2d,
    fft2,
    fft_circular_convolve,
    fft_circular_convolve2d,
    linear_convolve,
    linear_convolve2d,
)


class TestCircular1D:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 8, 13, 16])
    def test_fft_path_matches_direct(self, n):
        rng = np.random.default_rng(n)
        x = rng.standard_normal(n)
        k = rng.standard_normal(n)
        np.testing.assert_allclose(
            fft_circular_convolve(x, k), circular_convolve(x, k), atol=1e-8
        )

    def test_identity_kernel(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        delta = np.array([1.0, 0.0, 0.0, 0.0])
        np.testing.assert_allclose(circular_convolve(x, delta), x, atol=1e-12)

    def test_shift_kernel_rolls_input(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        shift_one = np.array([0.0, 1.0, 0.0, 0.0])
        np.testing.assert_allclose(
            circular_convolve(x, shift_one), np.roll(x, 1), atol=1e-12
        )

    def test_commutativity(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(8)
        k = rng.standard_normal(8)
        np.testing.assert_allclose(
            circular_convolve(x, k), circular_convolve(k, x), atol=1e-10
        )

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            circular_convolve(np.ones(4), np.ones(5))
        with pytest.raises(ValueError):
            fft_circular_convolve(np.ones(4), np.ones(5))

    def test_real_inputs_give_real_output(self):
        rng = np.random.default_rng(2)
        out = fft_circular_convolve(rng.standard_normal(8), rng.standard_normal(8))
        assert np.isrealobj(out)

    def test_complex_inputs_give_complex_output(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(8) + 1j * rng.standard_normal(8)
        out = fft_circular_convolve(x, x)
        assert np.iscomplexobj(out)


class TestCircular2D:
    @pytest.mark.parametrize("shape", [(1, 1), (2, 2), (4, 4), (3, 5), (4, 6), (8, 8)])
    def test_fft_path_matches_direct(self, shape):
        rng = np.random.default_rng(shape[0] * 10 + shape[1])
        x = rng.standard_normal(shape)
        k = rng.standard_normal(shape)
        np.testing.assert_allclose(
            fft_circular_convolve2d(x, k), circular_convolve2d(x, k), atol=1e-8
        )

    def test_convolution_theorem_explicitly(self):
        """F(X (*) K) == F(X) o F(K) -- paper Eq. 3 verbatim."""
        rng = np.random.default_rng(9)
        x = rng.standard_normal((6, 6))
        k = rng.standard_normal((6, 6))
        left = fft2(circular_convolve2d(x, k))
        right = fft2(x) * fft2(k)
        np.testing.assert_allclose(left, right, atol=1e-8)

    def test_identity_kernel_2d(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, 5))
        delta = np.zeros((5, 5))
        delta[0, 0] = 1.0
        np.testing.assert_allclose(circular_convolve2d(x, delta), x, atol=1e-12)

    def test_shift_kernel_2d(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 4))
        kernel = np.zeros((4, 4))
        kernel[1, 2] = 1.0
        expected = np.roll(np.roll(x, 1, axis=0), 2, axis=1)
        np.testing.assert_allclose(circular_convolve2d(x, kernel), expected, atol=1e-12)

    def test_mismatched_shapes_raise(self):
        with pytest.raises(ValueError):
            circular_convolve2d(np.ones((2, 3)), np.ones((3, 2)))
        with pytest.raises(ValueError):
            fft_circular_convolve2d(np.ones((2, 3)), np.ones((3, 2)))


class TestLinear:
    def test_linear_1d_matches_numpy_convolve(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal(9)
        k = rng.standard_normal(4)
        np.testing.assert_allclose(
            linear_convolve(x, k), np.convolve(x, k), atol=1e-8
        )

    def test_linear_2d_matches_scipy(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        rng = np.random.default_rng(7)
        x = rng.standard_normal((5, 6))
        k = rng.standard_normal((3, 3))
        np.testing.assert_allclose(
            linear_convolve2d(x, k), scipy_signal.convolve2d(x, k), atol=1e-8
        )

    def test_output_shape(self):
        out = linear_convolve(np.ones(5), np.ones(3))
        assert out.shape == (7,)
        out2 = linear_convolve2d(np.ones((4, 5)), np.ones((2, 3)))
        assert out2.shape == (5, 7)


class TestProperties:
    @given(
        n=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem_any_length_1d(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        k = rng.standard_normal(n)
        np.testing.assert_allclose(
            fft_circular_convolve(x, k), circular_convolve(x, k), atol=1e-7
        )

    @given(
        m=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_theorem_any_shape_2d(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        k = rng.standard_normal((m, n))
        np.testing.assert_allclose(
            fft_circular_convolve2d(x, k), circular_convolve2d(x, k), atol=1e-7
        )

    @given(
        n=st.sampled_from([4, 8, 6]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_linearity_in_input(self, n, seed):
        """Linearity of X -> X (*) K underpins the fast contribution-factor
        path in repro.core.interpretation."""
        rng = np.random.default_rng(seed)
        x1 = rng.standard_normal((n, n))
        x2 = rng.standard_normal((n, n))
        k = rng.standard_normal((n, n))
        combined = fft_circular_convolve2d(x1 + x2, k)
        separate = fft_circular_convolve2d(x1, k) + fft_circular_convolve2d(x2, k)
        np.testing.assert_allclose(combined, separate, atol=1e-7)


class TestBatchedCircular2D:
    """fft_circular_convolve2d_batch: one kernel spectrum, many inputs."""

    @pytest.mark.parametrize("shape", [(4, 4), (3, 5), (8, 8), (4, 8)])
    def test_matches_per_plane_convolution(self, shape):
        from repro.fft import fft_circular_convolve2d_batch

        rng = np.random.default_rng(shape[0] + shape[1])
        stack = rng.standard_normal((6,) + shape)
        kernel = rng.standard_normal(shape)
        batched = fft_circular_convolve2d_batch(stack, kernel)
        for plane, result in zip(stack, batched):
            np.testing.assert_array_equal(result, fft_circular_convolve2d(plane, kernel))

    def test_precomputed_kernel_spectrum_reused(self):
        from repro.fft import fft_circular_convolve2d_batch, kernel_spectrum

        rng = np.random.default_rng(3)
        stack = rng.standard_normal((4, 8, 8))
        kernel = rng.standard_normal((8, 8))
        spectrum = kernel_spectrum(kernel, real=True)
        np.testing.assert_array_equal(
            fft_circular_convolve2d_batch(stack, kernel, kernel_spectrum=spectrum),
            fft_circular_convolve2d_batch(stack, kernel),
        )

    def test_precomputed_raw_full_spectrum_matches_complex_path(self):
        """The legacy raw-ndarray spectrum form still runs the full
        complex path and matches it bit for bit."""
        from repro.fft import fft_circular_convolve2d_batch
        from repro.fft.convolution import set_real_convolution_path

        rng = np.random.default_rng(3)
        stack = rng.standard_normal((4, 8, 8))
        kernel = rng.standard_normal((8, 8))
        with_raw = fft_circular_convolve2d_batch(
            stack, kernel, kernel_spectrum=fft2(kernel)
        )
        previous = set_real_convolution_path(False)
        try:
            complex_path = fft_circular_convolve2d_batch(stack, kernel)
        finally:
            set_real_convolution_path(previous)
        np.testing.assert_array_equal(with_raw, complex_path)

    def test_complex_inputs_stay_complex(self):
        from repro.fft import fft_circular_convolve2d_batch

        rng = np.random.default_rng(4)
        stack = rng.standard_normal((2, 4, 4)) + 1j * rng.standard_normal((2, 4, 4))
        kernel = rng.standard_normal((4, 4))
        assert np.iscomplexobj(fft_circular_convolve2d_batch(stack, kernel))

    def test_validation(self):
        from repro.fft import fft_circular_convolve2d_batch

        with pytest.raises(ValueError):
            fft_circular_convolve2d_batch(np.ones((4, 4)), np.ones((4, 4)))
        with pytest.raises(ValueError):
            fft_circular_convolve2d_batch(np.ones((2, 4, 4)), np.ones((5, 5)))
        with pytest.raises(ValueError):
            fft_circular_convolve2d_batch(np.ones((0, 4, 4)), np.ones((4, 4)))

    def test_chunked_batches_bit_identical(self):
        """Batches larger than the internal chunk size must not change
        any per-plane result."""
        from repro.fft import fft_circular_convolve2d_batch
        from repro.fft.convolution import _CONV_BATCH_CHUNK

        rng = np.random.default_rng(5)
        batch = _CONV_BATCH_CHUNK + 7
        stack = rng.standard_normal((batch, 8, 8))
        kernel = rng.standard_normal((8, 8))
        batched = fft_circular_convolve2d_batch(stack, kernel)
        for plane, result in zip(stack, batched):
            np.testing.assert_array_equal(result, fft_circular_convolve2d(plane, kernel))


class TestMultiKernelBatch:
    """Per-row kernel stacks: the cross-pair wave convolution substrate."""

    def test_row_kernel_matches_per_row_convolution(self):
        from repro.fft import fft_circular_convolve2d_batch

        rng = np.random.default_rng(6)
        stack = rng.standard_normal((7, 8, 8))
        kernels = rng.standard_normal((3, 8, 8))
        row_kernel = np.array([0, 1, 2, 0, 2, 1, 0])
        fused = fft_circular_convolve2d_batch(stack, kernels, row_kernel=row_kernel)
        for row, (plane, which) in enumerate(zip(stack, row_kernel)):
            np.testing.assert_array_equal(
                fused[row], fft_circular_convolve2d(plane, kernels[which])
            )

    def test_row_kernel_spans_chunk_boundaries(self):
        """Rows mapping to different kernels must stay aligned when the
        stack is transformed in internal chunks."""
        from repro.fft import fft_circular_convolve2d_batch
        from repro.fft.convolution import _CONV_BATCH_CHUNK

        rng = np.random.default_rng(7)
        batch = _CONV_BATCH_CHUNK + 5
        stack = rng.standard_normal((batch, 4, 4))
        kernels = rng.standard_normal((2, 4, 4))
        row_kernel = np.arange(batch) % 2
        fused = fft_circular_convolve2d_batch(stack, kernels, row_kernel=row_kernel)
        for row in (0, _CONV_BATCH_CHUNK - 1, _CONV_BATCH_CHUNK, batch - 1):
            np.testing.assert_array_equal(
                fused[row],
                fft_circular_convolve2d(stack[row], kernels[row_kernel[row]]),
            )

    def test_validation(self):
        from repro.fft import fft_circular_convolve2d_batch

        stack = np.ones((3, 4, 4))
        kernels = np.ones((2, 4, 4))
        with pytest.raises(ValueError):  # stack without row map
            fft_circular_convolve2d_batch(stack, kernels)
        with pytest.raises(ValueError):  # row map without stack
            fft_circular_convolve2d_batch(stack, np.ones((4, 4)), row_kernel=[0, 0, 0])
        with pytest.raises(ValueError):  # wrong length
            fft_circular_convolve2d_batch(stack, kernels, row_kernel=[0, 1])
        with pytest.raises(ValueError):  # out of range
            fft_circular_convolve2d_batch(stack, kernels, row_kernel=[0, 1, 2])
        with pytest.raises(ValueError):  # empty kernel stack
            fft_circular_convolve2d_batch(stack, np.ones((0, 4, 4)), row_kernel=[0, 0, 0])


class TestRealPathRouting:
    """The half-spectrum real path vs the full complex path."""

    @pytest.mark.parametrize("shape", [(8, 8), (7, 5), (6, 9), (16, 16), (9, 9)])
    def test_real_path_agrees_with_complex_path(self, shape):
        from repro.fft import set_real_convolution_path

        rng = np.random.default_rng(shape[0] * 17 + shape[1])
        x = rng.standard_normal(shape)
        k = rng.standard_normal(shape)
        real_path = fft_circular_convolve2d(x, k)
        previous = set_real_convolution_path(False)
        try:
            complex_path = fft_circular_convolve2d(x, k)
        finally:
            set_real_convolution_path(previous)
        assert real_path.dtype == complex_path.dtype == np.float64
        np.testing.assert_allclose(real_path, complex_path, atol=1e-10)

    def test_flag_round_trips(self):
        from repro.fft import real_convolution_path_enabled, set_real_convolution_path

        assert real_convolution_path_enabled() is True
        previous = set_real_convolution_path(False)
        assert previous is True
        assert real_convolution_path_enabled() is False
        set_real_convolution_path(True)
        assert real_convolution_path_enabled() is True

    def test_flag_off_reproduces_legacy_complex_bits(self):
        """With the real path disabled, results are bit-identical to the
        pre-change full-complex implementation."""
        from repro.fft import ifft2, set_real_convolution_path

        rng = np.random.default_rng(11)
        x = rng.standard_normal((16, 16))
        k = rng.standard_normal((16, 16))
        previous = set_real_convolution_path(False)
        try:
            legacy = fft_circular_convolve2d(x, k)
        finally:
            set_real_convolution_path(previous)
        np.testing.assert_array_equal(legacy, np.real(ifft2(fft2(x) * fft2(k))))

    def test_complex_operands_always_use_complex_path(self):
        rng = np.random.default_rng(12)
        x = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        k = rng.standard_normal((8, 8)) + 1j * rng.standard_normal((8, 8))
        from repro.fft import ifft2

        result = fft_circular_convolve2d(x, k)
        assert np.iscomplexobj(result)
        np.testing.assert_array_equal(result, ifft2(fft2(x) * fft2(k)))

    def test_loop_dense_streamed_bit_identical_on_real_path(self):
        from repro.fft import (
            fft_circular_convolve2d_batch,
            fft_circular_convolve2d_chunks,
        )

        rng = np.random.default_rng(13)
        batch = rng.standard_normal((10, 12, 12))
        k = rng.standard_normal((12, 12))
        dense = fft_circular_convolve2d_batch(batch, k)
        looped = np.stack([fft_circular_convolve2d(p, k) for p in batch])
        np.testing.assert_array_equal(dense, looped)
        for chunk_rows in (1, 3, 10):
            streamed = np.empty_like(dense)
            chunks = (
                (batch[i : i + chunk_rows], range(i, min(i + chunk_rows, 10)))
                for i in range(0, 10, chunk_rows)
            )
            for convolved, rows in fft_circular_convolve2d_chunks(
                chunks, k, num_rows=10
            ):
                streamed[rows.start : rows.stop] = convolved
            np.testing.assert_array_equal(streamed, dense)

    def test_quantized_spectrum_precision_mismatch_raises(self):
        from repro.fft import fft_circular_convolve2d_batch, kernel_spectrum
        from repro.hw.quantize import resolve_precision

        rng = np.random.default_rng(14)
        stack = rng.standard_normal((2, 8, 8))
        k = rng.standard_normal((8, 8))
        quantized = kernel_spectrum(k, real=True, precision=resolve_precision("int8"))
        with pytest.raises(ValueError, match="quantized as"):
            fft_circular_convolve2d_batch(stack, k, kernel_spectrum=quantized)

    def test_quantized_spectrum_matching_precision_reused(self):
        from repro.fft import fft_circular_convolve2d_batch, kernel_spectrum
        from repro.hw.quantize import resolve_precision

        rng = np.random.default_rng(15)
        stack = rng.standard_normal((2, 8, 8))
        k = rng.standard_normal((8, 8))
        spec = resolve_precision("int8")
        quantized = kernel_spectrum(k, real=True, precision=spec)
        np.testing.assert_array_equal(
            fft_circular_convolve2d_batch(
                stack, k, kernel_spectrum=quantized, precision=spec
            ),
            fft_circular_convolve2d_batch(stack, k, precision=spec),
        )
