"""Tests for the 2-D transforms: row-column FFT vs matmul (MXU) form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft2, fft2_matmul, ifft2, ifft2_matmul

SHAPES = [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4), (3, 5), (6, 9), (16, 16)]


@pytest.mark.parametrize("shape", SHAPES)
def test_fft2_matches_numpy(shape):
    rng = np.random.default_rng(shape[0] * 100 + shape[1])
    x = rng.standard_normal(shape)
    np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
def test_matmul_form_matches_fft_form(shape):
    """Paper Eq. 13: (W_M . x) . W_N equals the row-column FFT."""
    rng = np.random.default_rng(shape[0] * 100 + shape[1] + 1)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(fft2_matmul(x), fft2(x), atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("norm", ["backward", "ortho"])
def test_round_trip(shape, norm):
    rng = np.random.default_rng(3)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(ifft2(fft2(x, norm=norm), norm=norm), x, atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
def test_matmul_round_trip(shape):
    rng = np.random.default_rng(4)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(ifft2_matmul(fft2_matmul(x)), x, atol=1e-8)


def test_ortho_norm_matches_paper_definition():
    # Paper Eq. 6 normalizes by 1/sqrt(MN).
    rng = np.random.default_rng(5)
    x = rng.standard_normal((4, 6))
    np.testing.assert_allclose(
        fft2(x, norm="ortho"), np.fft.fft2(x, norm="ortho"), atol=1e-9
    )


def test_non_2d_input_raises():
    with pytest.raises(ValueError):
        fft2(np.zeros(4))
    with pytest.raises(ValueError):
        fft2_matmul(np.zeros((2, 3, 4)))
    with pytest.raises(ValueError):
        ifft2(np.zeros((0, 4)))
    with pytest.raises(ValueError):
        ifft2_matmul(np.zeros(7))


class TestProperties:
    @given(
        m=st.integers(min_value=1, max_value=24),
        n=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_numpy_any_shape(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-7)

    @given(
        m=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_paths_agree_any_shape(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))
        np.testing.assert_allclose(fft2_matmul(x), fft2(x), atol=1e-7)

    @given(
        m=st.sampled_from([2, 4, 8, 3, 6]),
        n=st.sampled_from([2, 4, 8, 5, 7]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_parseval_2d(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        spectrum = fft2(x)
        np.testing.assert_allclose(
            np.sum(np.abs(spectrum) ** 2) / (m * n), np.sum(x**2), rtol=1e-8
        )

    @given(
        m=st.sampled_from([4, 8]),
        n=st.sampled_from([4, 8]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_separability_rows_then_columns(self, m, n, seed):
        """The two-stage order in Algorithm 1 (rows first) is immaterial."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        rows_then_cols = fft2(x)
        cols_then_rows = fft2(x.T).T
        np.testing.assert_allclose(rows_then_cols, cols_then_rows, atol=1e-8)


class TestBatchTransforms:
    """fft2_batch / ifft2_batch: per-plane bit-identity with fft2/ifft2."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_fft2_batch_matches_per_plane(self, shape):
        from repro.fft import fft2_batch

        rng = np.random.default_rng(shape[0] * 10 + shape[1])
        stack = rng.standard_normal((5,) + shape)
        batched = fft2_batch(stack)
        for plane, result in zip(stack, batched):
            np.testing.assert_array_equal(result, fft2(plane))

    @pytest.mark.parametrize("shape", SHAPES)
    def test_ifft2_batch_round_trip(self, shape):
        from repro.fft import fft2_batch, ifft2_batch

        rng = np.random.default_rng(shape[0] * 10 + shape[1] + 1)
        stack = rng.standard_normal((3,) + shape) + 1j * rng.standard_normal(
            (3,) + shape
        )
        np.testing.assert_allclose(ifft2_batch(fft2_batch(stack)), stack, atol=1e-8)

    def test_ifft2_batch_matches_per_plane(self):
        from repro.fft import ifft2_batch

        rng = np.random.default_rng(7)
        stack = rng.standard_normal((4, 8, 8)) + 1j * rng.standard_normal((4, 8, 8))
        batched = ifft2_batch(stack)
        for plane, result in zip(stack, batched):
            np.testing.assert_array_equal(result, ifft2(plane))

    def test_plain_matrix_is_zero_axis_batch(self):
        from repro.fft import fft2_batch

        x = np.random.default_rng(8).standard_normal((4, 6))
        np.testing.assert_array_equal(fft2_batch(x), fft2(x))

    def test_multi_axis_batch(self):
        from repro.fft import fft2_batch

        stack = np.random.default_rng(9).standard_normal((2, 3, 4, 4))
        batched = fft2_batch(stack)
        assert batched.shape == (2, 3, 4, 4)
        np.testing.assert_array_equal(batched[1, 2], fft2(stack[1, 2]))

    def test_batch_norms_follow_fft2(self):
        from repro.fft import fft2_batch

        x = np.random.default_rng(10).standard_normal((2, 4, 4))
        np.testing.assert_array_equal(
            fft2_batch(x, norm="ortho")[0], fft2(x[0], norm="ortho")
        )

    def test_invalid_batch_inputs_rejected(self):
        from repro.fft import fft2_batch, ifft2_batch

        with pytest.raises(ValueError):
            fft2_batch(np.ones(4))
        with pytest.raises(ValueError):
            ifft2_batch(np.zeros((2, 0, 4)))
