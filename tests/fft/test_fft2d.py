"""Tests for the 2-D transforms: row-column FFT vs matmul (MXU) form."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fft import fft2, fft2_matmul, ifft2, ifft2_matmul

SHAPES = [(1, 1), (2, 2), (4, 4), (8, 8), (4, 8), (8, 4), (3, 5), (6, 9), (16, 16)]


@pytest.mark.parametrize("shape", SHAPES)
def test_fft2_matches_numpy(shape):
    rng = np.random.default_rng(shape[0] * 100 + shape[1])
    x = rng.standard_normal(shape)
    np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
def test_matmul_form_matches_fft_form(shape):
    """Paper Eq. 13: (W_M . x) . W_N equals the row-column FFT."""
    rng = np.random.default_rng(shape[0] * 100 + shape[1] + 1)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(fft2_matmul(x), fft2(x), atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("norm", ["backward", "ortho"])
def test_round_trip(shape, norm):
    rng = np.random.default_rng(3)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(ifft2(fft2(x, norm=norm), norm=norm), x, atol=1e-8)


@pytest.mark.parametrize("shape", SHAPES)
def test_matmul_round_trip(shape):
    rng = np.random.default_rng(4)
    x = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
    np.testing.assert_allclose(ifft2_matmul(fft2_matmul(x)), x, atol=1e-8)


def test_ortho_norm_matches_paper_definition():
    # Paper Eq. 6 normalizes by 1/sqrt(MN).
    rng = np.random.default_rng(5)
    x = rng.standard_normal((4, 6))
    np.testing.assert_allclose(
        fft2(x, norm="ortho"), np.fft.fft2(x, norm="ortho"), atol=1e-9
    )


def test_non_2d_input_raises():
    with pytest.raises(ValueError):
        fft2(np.zeros(4))
    with pytest.raises(ValueError):
        fft2_matmul(np.zeros((2, 3, 4)))
    with pytest.raises(ValueError):
        ifft2(np.zeros((0, 4)))
    with pytest.raises(ValueError):
        ifft2_matmul(np.zeros(7))


class TestProperties:
    @given(
        m=st.integers(min_value=1, max_value=24),
        n=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_agrees_with_numpy_any_shape(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        np.testing.assert_allclose(fft2(x), np.fft.fft2(x), atol=1e-7)

    @given(
        m=st.integers(min_value=1, max_value=16),
        n=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_two_paths_agree_any_shape(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n)) + 1j * rng.standard_normal((m, n))
        np.testing.assert_allclose(fft2_matmul(x), fft2(x), atol=1e-7)

    @given(
        m=st.sampled_from([2, 4, 8, 3, 6]),
        n=st.sampled_from([2, 4, 8, 5, 7]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_parseval_2d(self, m, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        spectrum = fft2(x)
        np.testing.assert_allclose(
            np.sum(np.abs(spectrum) ** 2) / (m * n), np.sum(x**2), rtol=1e-8
        )

    @given(
        m=st.sampled_from([4, 8]),
        n=st.sampled_from([4, 8]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_separability_rows_then_columns(self, m, n, seed):
        """The two-stage order in Algorithm 1 (rows first) is immaterial."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, n))
        rows_then_cols = fft2(x)
        cols_then_rows = fft2(x.T).T
        np.testing.assert_allclose(rows_then_cols, cols_then_rows, atol=1e-8)
