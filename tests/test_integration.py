"""Cross-module integration tests: the whole system end to end."""

import numpy as np
import pytest

from repro import (
    ConvolutionDistiller,
    CpuDevice,
    GpuDevice,
    TpuBackend,
    block_contributions,
    make_tpu_chip,
)
from repro.core import (
    ExplanationPipeline,
    dominance_margin,
    rank_agreement,
    top_k_recall,
)
from repro.fft import fft_circular_convolve2d


class TestFullStackExplanation:
    """Train nothing, fake nothing: black-box -> distill -> explain ->
    quality metrics, on every simulated device."""

    @pytest.fixture(scope="class")
    def scenario(self):
        rng = np.random.default_rng(42)
        x = 0.02 * rng.standard_normal((16, 16))
        x[0, 0] = 1.0
        x[4:8, 8:12] = 5.0  # planted 4x4 block at grid (1, 2)
        kernel_true = rng.standard_normal((16, 16))
        y = fft_circular_convolve2d(x, kernel_true)
        return x, y, kernel_true

    @pytest.mark.parametrize(
        "device_factory",
        [
            CpuDevice,
            GpuDevice,
            lambda: TpuBackend(
                make_tpu_chip(num_cores=4, precision="fp32", mxu_rows=8, mxu_cols=8)
            ),
        ],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_planted_block_recovered_on_every_device(self, scenario, device_factory):
        x, y, _ = scenario
        device = device_factory()
        distiller = ConvolutionDistiller(device=device, eps=1e-9).fit(x, y)
        grid = block_contributions(x, distiller.kernel_, y, (4, 4), device=device)
        assert top_k_recall(grid, [(1, 2)], k=1) == 1.0
        assert dominance_margin(grid) > 2.0
        assert device.stats.seconds > 0

    def test_devices_agree_on_rankings(self, scenario):
        x, y, _ = scenario
        grids = {}
        for name, device in [
            ("cpu", CpuDevice()),
            ("tpu", TpuBackend(make_tpu_chip(num_cores=2, precision="fp32",
                                             mxu_rows=8, mxu_cols=8))),
        ]:
            distiller = ConvolutionDistiller(device=device, eps=1e-9).fit(x, y)
            grids[name] = block_contributions(x, distiller.kernel_, y, (4, 4))
        assert rank_agreement(grids["cpu"], grids["tpu"]) > 0.95

    def test_bf16_tpu_preserves_the_ranking(self, scenario):
        """Precision loss from bf16 MXU mode must not change the answer."""
        x, y, _ = scenario
        backend = TpuBackend(
            make_tpu_chip(num_cores=2, precision="bf16", mxu_rows=8, mxu_cols=8)
        )
        distiller = ConvolutionDistiller(device=backend, eps=1e-6).fit(x, y)
        grid = block_contributions(x, distiller.kernel_, y, (4, 4))
        assert top_k_recall(grid, [(1, 2)], k=1) == 1.0


class TestHarnessSmoke:
    """The bench harness's entry points run end to end and keep their
    structural promises (fast configurations only)."""

    def test_run_table1_times_only(self):
        from repro.bench.harness import format_table1, run_table1

        result = run_table1(with_accuracy=False)
        assert len(result.rows) == 2
        text = format_table1(result)
        assert "VGG19" in text and "ResNet50" in text
        for row in result.rows:
            assert row.speedup_vs_cpu > row.speedup_vs_gpu > 1.0

    def test_run_table2(self):
        from repro.bench.harness import format_table2, run_table2

        result = run_table2(pairs=2)
        assert all(row.cpu_seconds > row.tpu_seconds for row in result.rows)
        assert "Impro./CPU" in format_table2(result)

    def test_run_figure4(self):
        from repro.bench.harness import format_figure4, run_figure4

        result = run_figure4(sizes=(64, 256))
        assert len(result.points) == 2
        assert "TPU/CPU" in format_figure4(result)

    def test_run_figure5(self):
        from repro.bench.harness import format_figure5, run_figure5

        result = run_figure5()
        assert result.face_is_top
        assert "face block" in format_figure5(result)

    def test_run_figure6(self):
        from repro.bench.harness import format_figure6, run_figure6

        result = run_figure6()
        assert result.attack_cycle_is_top
        assert "ATTACK_VECTOR" in format_figure6(result)

    def test_cli_rejects_unknown_experiment(self):
        from repro.bench.harness import main

        assert main(["bogus"]) == 2

    def test_cli_runs_figure4(self, capsys):
        from repro.bench.harness import main

        assert main(["figure4"]) == 0
        assert "FIGURE 4" in capsys.readouterr().out


class TestCsvReports:
    def test_table2_csv_round_trip(self):
        import csv
        import io

        from repro.bench.harness import run_table2
        from repro.bench.report import table2_csv

        content = table2_csv(run_table2(pairs=1))
        rows = list(csv.DictReader(io.StringIO(content)))
        assert [row["model"] for row in rows] == ["VGG19", "ResNet50"]
        assert float(rows[0]["improvement_vs_cpu"]) > 1.0

    def test_figure4_csv(self):
        import csv
        import io

        from repro.bench.harness import run_figure4
        from repro.bench.report import figure4_csv

        content = figure4_csv(run_figure4(sizes=(64, 128)))
        rows = list(csv.DictReader(io.StringIO(content)))
        assert [int(row["size"]) for row in rows] == [64, 128]

    def test_figure5_and_6_csv(self):
        from repro.bench.harness import run_figure5, run_figure6
        from repro.bench.report import figure5_csv, figure6_csv

        five = figure5_csv(run_figure5())
        assert "face" in five and "ear" in five
        six = figure6_csv(run_figure6())
        assert ",1" in six  # the attack-cycle marker column

    def test_write_csv(self, tmp_path):
        from repro.bench.report import write_csv

        path = tmp_path / "out.csv"
        write_csv(str(path), "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"
        with pytest.raises(ValueError):
            write_csv(str(path), "   ")

    def test_table1_csv_headers(self):
        from repro.bench.harness import run_table1
        from repro.bench.report import table1_csv

        content = table1_csv(run_table1(with_accuracy=False))
        header = content.splitlines()[0]
        assert "speedup_vs_cpu" in header and "tpu_train_s" in header


class TestLibraryFftOption:
    def test_cpu_library_fft_cheaper(self):
        from repro.hw import CpuConfig

        naive = CpuDevice()
        strong = CpuDevice(CpuConfig(use_library_fft=True))
        assert strong.fft2_seconds(512, 512) < naive.fft2_seconds(512, 512)
        # Matmul pricing is unchanged by the FFT option.
        assert strong.matmul_seconds(64, 64, 64) == naive.matmul_seconds(64, 64, 64)

    def test_gpu_library_fft_cheaper(self):
        from repro.hw import GpuConfig

        naive = GpuDevice()
        strong = GpuDevice(GpuConfig(use_library_fft=True))
        assert strong.fft2_seconds(512, 512) < naive.fft2_seconds(512, 512)

    def test_functional_results_identical(self):
        from repro.hw import CpuConfig

        x = np.random.default_rng(0).standard_normal((8, 8))
        naive = CpuDevice().fft2(x)
        strong = CpuDevice(CpuConfig(use_library_fft=True)).fft2(x)
        np.testing.assert_allclose(naive, strong, atol=1e-12)
