"""Figure 5 scenario: explain a real CNN's image classification.

Trains the CI-scale VGG19 on synthetic images whose *only* class
evidence is a planted motif block (so the explanation ground truth is
known), then explains one test prediction three ways:

1. the paper's distilled explainer -- fit ``X (*) K = Y`` on the model's
   input-output behaviour around the image, occlude blocks through the
   one-layer kernel only (no further model queries);
2. occlusion of the real model (black-box baseline);
3. gradient x input (white-box baseline).

All three must rank the planted motif block first.

Implementation notes: the distilled model operates on the grayscale
plane of the image with the ``tile`` output embedding, and masks to the
image mean (the standard occlusion baseline; ``fill_value=0`` is Eq. 5
verbatim but lets the brightness DC term mask the class signal on
uncentred image data).

Run: ``python examples/image_interpretation.py``  (a few minutes: it
really trains the scaled network)
"""

import numpy as np

from repro.baselines import gradient_input_saliency, saliency_block_grid
from repro.core import ConvolutionDistiller, OutputEmbedding, block_contributions
from repro.core.interpretation import normalize_scores
from repro.data import CifarLikeSpec, SyntheticCifar100, to_grayscale
from repro.nn import Adam, Trainer, vgg19_scaled

BLOCK = 8
GRID = 4


def print_grid(title: str, grid: np.ndarray) -> None:
    print(title)
    for row in normalize_scores(grid):
        print("   " + " ".join(f"{value:5.2f}" for value in row))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Train a real (scaled) VGG19.  texture_strength=0 makes the
    #    planted motif block the only class evidence, so the trained
    #    model must rely on it -- a known ground truth for explainers.
    # ------------------------------------------------------------------
    dataset = SyntheticCifar100(
        CifarLikeSpec(num_classes=2, noise_level=0.08, texture_strength=0.0),
        seed=0,
    )
    train_x, train_y, test_x, test_y = dataset.train_test_split(256, 64, seed=0)
    model = vgg19_scaled(num_classes=2, seed=0)
    trainer = Trainer(model, Adam(model.parameters(), lr=2e-3), batch_size=32)
    trainer.fit(train_x, train_y, epochs=8)
    print(f"test accuracy: {trainer.evaluate(test_x, test_y):.2%}")

    image = test_x[0].astype(np.float64)
    label = int(test_y[0])
    truth_block = dataset.motif_block(label)
    print(f"class {label}: ground-truth motif block {truth_block}")

    def model_rgb(rgb):
        return model.forward(rgb[np.newaxis], training=False)[0]

    # ------------------------------------------------------------------
    # 2. Distilled explainer: fit K on (grayscale plane -> logits) pairs
    #    sampled around the image (noise + random block occlusions --
    #    the model's local input-output behaviour), then score blocks
    #    through the distilled kernel alone.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(1)
    fill = float(image.mean())
    planes, logits = [], []
    for index in range(24):
        variant = image + 0.05 * rng.standard_normal(image.shape)
        if index % 2 == 1:
            bi, bj = rng.integers(0, GRID, 2)
            variant[:, bi * BLOCK : (bi + 1) * BLOCK, bj * BLOCK : (bj + 1) * BLOCK] = fill
        planes.append(to_grayscale(variant[np.newaxis])[0])
        logits.append(model_rgb(variant))

    embedding = OutputEmbedding("tile")
    distiller = ConvolutionDistiller(eps=1e-3, embedding=embedding).fit(
        np.stack(planes), np.stack(logits)
    )
    gray = to_grayscale(image[np.newaxis])[0]
    y_plane = embedding.embed(model_rgb(image), gray.shape)
    distilled_grid = block_contributions(
        gray,
        distiller.kernel_,
        y_plane,
        block_shape=(BLOCK, BLOCK),
        fill_value=float(gray.mean()),
    )
    print_grid("distilled-model block contributions:", distilled_grid)

    # ------------------------------------------------------------------
    # 3. Baselines against the real model.
    # ------------------------------------------------------------------
    base_logits = model_rgb(image)
    occlusion_grid = np.zeros((GRID, GRID))
    for bi in range(GRID):
        for bj in range(GRID):
            occluded = image.copy()
            occluded[:, bi * BLOCK : (bi + 1) * BLOCK, bj * BLOCK : (bj + 1) * BLOCK] = fill
            occlusion_grid[bi, bj] = np.linalg.norm(model_rgb(occluded) - base_logits)
    print_grid("occlusion saliency (black-box model):", occlusion_grid)

    saliency = gradient_input_saliency(model, image)
    gradient_grid = saliency_block_grid(saliency, (BLOCK, BLOCK))
    print_grid("gradient x input (white-box model):", gradient_grid)

    # ------------------------------------------------------------------
    # 4. Verdicts.
    # ------------------------------------------------------------------
    agreements = 0
    for name, grid in [
        ("distilled", distilled_grid),
        ("occlusion", occlusion_grid),
        ("gradient", gradient_grid),
    ]:
        top = tuple(int(v) for v in np.unravel_index(np.argmax(grid), grid.shape))
        match = top == truth_block
        agreements += int(match)
        print(f"{name:>10}: top block {top}  [{'MATCH' if match else 'differs'}]")
    print(f"{agreements}/3 explainers recovered the planted block")


if __name__ == "__main__":
    main()
