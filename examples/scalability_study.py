"""Figure 4 scenario: how the three devices scale with matrix size.

Sweeps the interpretation solve over matrix sizes on the CPU, GPU and
TPU cost models, prints the Figure 4 series, and then drills into the
TPU side: Algorithm 1's core-count sweep on an *executable* sharded
transform (every shard really runs through a simulated core's MXU), and
the communication/compute split that decides when sharding pays.

Run: ``python examples/scalability_study.py``
"""

import numpy as np

from repro.bench.workloads import FIGURE4_SIZES, default_devices, figure4_solve_seconds
from repro.core import DecomposedFourier, make_tpu_chip
from repro.fft import fft2


def sweep_devices() -> None:
    print("=== Figure 4: solve time vs matrix size (simulated seconds) ===")
    devices = default_devices()
    header = f"{'size':>6}" + "".join(f"{name:>12}" for name in devices)
    print(header + f"{'TPU/CPU':>10}")
    for size in FIGURE4_SIZES:
        times = {name: figure4_solve_seconds(dev, size) for name, dev in devices.items()}
        row = f"{size:>6}" + "".join(f"{times[name]:>12.4f}" for name in devices)
        print(row + f"{times['CPU'] / times['TPU']:>9.1f}x")


def sweep_cores() -> None:
    print()
    print("=== Algorithm 1: executable core sweep (128x128 transform) ===")
    chip = make_tpu_chip(num_cores=16, precision="fp32", mxu_rows=16, mxu_cols=16)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((128, 128))
    reference = fft2(x)
    print(f"{'cores':>6}{'compute (s)':>14}{'comm (s)':>12}{'elapsed (s)':>13}")
    for cores in (1, 2, 4, 8, 16):
        chip.reset()
        result, report = DecomposedFourier(chip, cores=cores).fft2(x)
        error = np.max(np.abs(result - reference))
        assert error < 1e-5, "sharded transform must merge exactly"
        print(
            f"{cores:>6}{report.compute_seconds:>14.6f}"
            f"{report.communication_seconds:>12.6f}"
            f"{report.elapsed_seconds:>13.6f}"
        )
    print("(compute shrinks with cores; the reassembly collective grows --")
    print(" the crossover decides when data decomposition pays off)")


def main() -> None:
    sweep_devices()
    sweep_cores()


if __name__ == "__main__":
    main()
