"""Quickstart: distill a black-box model and explain one prediction.

The paper's whole pipeline in ~40 lines:

1. take a black-box model (here: an unknown circular-convolution
   response -- the family the distilled model is exact for);
2. fit the distilled model ``X (*) K = Y`` with the closed-form
   Fourier-domain solve (Eq. 4), on the simulated 128-core TPU;
3. compute contribution factors (Eq. 5) to see *why* the model produced
   its output;
4. read the simulated execution time off the device ledger.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import ConvolutionDistiller, TpuBackend, feature_contributions, make_tpu_chip
from repro.core import top_k_features
from repro.fft import fft_circular_convolve2d


def main() -> None:
    rng = np.random.default_rng(0)

    # A black-box model: we can query it, but not look inside.
    hidden_kernel = rng.standard_normal((16, 16))

    def black_box(x):
        return fft_circular_convolve2d(x, hidden_kernel)

    # Some input whose prediction we want explained.  One feature
    # carries most of the signal -- the explainer should find it.
    x = 0.05 * rng.standard_normal((16, 16))
    x[0, 0] = 1.0
    x[11, 4] = 8.0
    y = black_box(x)

    # The proposed approach: distill on a TPU backend (bf16 MXU mode).
    backend = TpuBackend(make_tpu_chip(num_cores=128, precision="bf16"))
    distiller = ConvolutionDistiller(device=backend, eps=1e-9)
    with backend.program(infeed_bytes=x.nbytes + y.nbytes):
        distiller.fit(x, y)

    print("distillation residual:", distiller.residual(x, y))

    scores = feature_contributions(x, distiller.kernel_, y)
    top = top_k_features(scores, 3)
    print("top contributing features:", top)
    assert top[0] == (11, 4), "the planted feature should rank first"

    stats = backend.take_stats()
    print(f"simulated TPU seconds: {stats.seconds:.6f}")
    print("operation mix:", dict(stats.op_counts))


if __name__ == "__main__":
    main()
