"""Look inside the simulated TPU: ISA programs, schedules, waveforms.

EDA-flavoured tour of the hardware substrate:

1. lower the paper's distillation solve (Eq. 4) into the TPU's
   instruction stream and print the opcode mix;
2. price it under the overlap-aware scheduler, fused vs eager -- the
   quantitative version of "one forward pass";
3. run a matmul through the cycle-level systolic array, print the PE
   utilization waveform as ASCII art, and dump it as a VCD file you can
   open in GTKWave.

Run: ``python examples/hardware_inspection.py``
"""

import numpy as np

from repro.hw import (
    Mxu,
    MxuConfig,
    Scheduler,
    SystolicArray,
    compiled_seconds,
    eager_seconds,
    lower,
    solve_graph,
    trace_matmul,
    utilization_ascii,
    write_vcd,
)
from repro.hw.tpu import TpuCoreConfig


def inspect_program() -> None:
    print("=== 1. The Eq. 4 solve, lowered to TPU instructions ===")
    core = TpuCoreConfig(mxu=MxuConfig(rows=64, cols=64, precision="bf16"))
    graph = solve_graph(size=256, pairs=1)
    program = lower(graph, core, host_bandwidth_bytes_per_sec=0.6e9)
    print(f"tensor ops: {len(graph)}, lowered instructions: {len(program)}")
    for opcode, count in sorted(program.opcode_histogram().items(), key=str):
        print(f"  {opcode.value:<18} x{count}")
    print("first instructions:")
    print(program.disassemble(limit=6))

    result = Scheduler(core.clock_hz).run(program)
    print(f"scheduled: {result.seconds * 1e3:.3f} ms "
          f"(compute {result.compute_seconds * 1e3:.3f} ms, "
          f"dma {result.dma_seconds * 1e3:.3f} ms, "
          f"hidden weight loads {result.hidden_weight_load_cycles} cy)")


def inspect_fusion() -> None:
    print()
    print("=== 2. Fused program vs eager per-op dispatch ===")
    core = TpuCoreConfig(mxu=MxuConfig(rows=64, cols=64, precision="bf16"))
    for pairs in (1, 4):
        graph = solve_graph(size=256, pairs=pairs)
        fused = compiled_seconds(graph, core, 0.6e9, dispatch_latency_sec=26e-3)
        eager = eager_seconds(graph, core, 0.6e9, dispatch_latency_sec=26e-3)
        print(f"  {pairs} pair(s): fused {fused * 1e3:8.1f} ms | "
              f"eager {eager * 1e3:8.1f} ms | saving {eager / fused:.1f}x")


def inspect_waveform() -> None:
    print()
    print("=== 3. Systolic array waveform (16x16 array, 48-row stream) ===")
    rng = np.random.default_rng(0)
    array = SystolicArray(rows=16, cols=16)
    activations = rng.uniform(0.5, 1.5, size=(48, 16))
    weights = rng.standard_normal((16, 16))
    trace = trace_matmul(array, activations, weights)
    print(utilization_ascii(trace))

    vcd_path = "systolic_trace.vcd"
    with open(vcd_path, "w") as handle:
        handle.write(write_vcd(trace))
    print(f"VCD dump written to {vcd_path} (open with GTKWave)")

    mxu = Mxu(MxuConfig(rows=16, cols=16, precision="int8"))
    product, stats = mxu.matmul(activations, weights)
    print(f"MXU tiled run: {stats.cycles} cycles, {stats.tiles} tile(s), "
          f"utilization {stats.utilization(mxu.config):.2%}")
    reference = activations @ weights
    error = np.max(np.abs(product - reference)) / np.max(np.abs(reference))
    print(f"int8 relative error vs exact matmul: {error:.4f}")


def main() -> None:
    inspect_program()
    inspect_fusion()
    inspect_waveform()


if __name__ == "__main__":
    main()
