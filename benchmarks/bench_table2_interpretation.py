"""Table II: outcome-interpretation time per 10 input-output pairs.

Regenerates the paper's Table II: simulated seconds to distill and
compute contribution factors for 10 pairs on CPU / GPU / TPU, for the
VGG19 (image blocks) and ResNet50 (trace columns) workloads.  Shape
contract:

* ordering CPU > GPU > TPU;
* TPU-vs-CPU improvement in the ~33-42x band (paper: 36.2x / 39.5x);
* TPU-vs-GPU improvement in the ~10-15x band (paper: 11x / 13.6x);
* the cost model agrees with the executable pipeline at small scale.
"""

import numpy as np
import pytest

from repro.bench.harness import format_table2, run_table2
from repro.bench.workloads import InterpretationWorkload, interpretation_seconds
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.pipeline import ExplanationPipeline
from repro.fft import fft_circular_convolve2d
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice


@pytest.fixture(scope="module")
def table2():
    return run_table2()


def test_print_table2(table2, capsys):
    with capsys.disabled():
        print()
        print(format_table2(table2))


@pytest.mark.parametrize("row_index, model", [(0, "VGG19"), (1, "ResNet50")])
def test_device_ordering(table2, row_index, model):
    row = table2.rows[row_index]
    assert row.model == model
    assert row.cpu_seconds > row.gpu_seconds > row.tpu_seconds


@pytest.mark.parametrize("row_index", [0, 1])
def test_improvement_bands(table2, row_index):
    row = table2.rows[row_index]
    assert 33.0 < row.improvement_vs_cpu < 42.0
    assert 10.0 < row.improvement_vs_gpu < 15.0


def test_vgg_row_near_paper(table2):
    """Paper: 36.2x vs CPU for VGG19 interpretation."""
    assert table2.rows[0].improvement_vs_cpu == pytest.approx(36.2, rel=0.15)


def test_resnet_row_near_paper(table2):
    """Paper: 39.5x vs CPU for ResNet50 interpretation."""
    assert table2.rows[1].improvement_vs_cpu == pytest.approx(39.5, rel=0.15)


def test_resnet_absolutely_slower_than_vgg(table2):
    """The paper's ResNet row is uniformly costlier on every device."""
    vgg, resnet = table2.rows
    assert resnet.cpu_seconds > vgg.cpu_seconds
    assert resnet.gpu_seconds > vgg.gpu_seconds
    assert resnet.tpu_seconds > vgg.tpu_seconds


def test_benchmark_table2(benchmark):
    result = benchmark(run_table2)
    assert len(result.rows) == 2


class TestCostModelMatchesPipeline:
    """The Table II cost arithmetic must mirror the executable pipeline
    in both execution modes (looped and batched)."""

    @pytest.mark.parametrize("method", ["loop", "batched"])
    @pytest.mark.parametrize(
        "device_factory",
        [
            CpuDevice,
            GpuDevice,
            lambda: TpuBackend(
                make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=8, mxu_cols=8)
            ),
        ],
        ids=["cpu", "gpu", "tpu"],
    )
    def test_cost_only_equals_executed_pipeline(self, device_factory, method):
        rng = np.random.default_rng(0)
        shape = (16, 16)
        pairs = []
        for seed in range(2):
            x = rng.standard_normal(shape)
            x[0, 0] += 5.0 * 16
            kernel = rng.standard_normal(shape)
            pairs.append((x, fft_circular_convolve2d(x, kernel)))

        device = device_factory()
        # Pin pair fusion: interpretation_seconds models the historical
        # per-pair execution (wave fusion is modeled and asserted by
        # bench_fleet_interpretation.py).
        pipeline = ExplanationPipeline(
            device, granularity="blocks", block_shape=(8, 8), eps=1e-8,
            method=method, fusion="pair",
        )
        executed = pipeline.run(pairs).simulated_seconds

        workload = InterpretationWorkload(
            name="mini", plane=shape, num_features=4, pairs=2
        )
        modeled = interpretation_seconds(device_factory(), workload, method=method)
        assert modeled == pytest.approx(executed, rel=0.05)
