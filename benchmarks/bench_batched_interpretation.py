"""Micro-benchmark: looped vs batched occlusion interpretation.

Compares the two execution modes of the batched occlusion engine
(:mod:`repro.core.masking`) on the same workload, along both axes the
refactor targets:

* **simulated seconds** -- the scientific quantity: the batched plan
  amortizes the kernel spectrum on every backend and removes the
  per-mask host round trips on the TPU, so it must be cheaper
  everywhere and dramatically cheaper on the TPU;
* **wall-clock seconds** -- the engineering quantity: the batched path
  replaces a Python loop of per-mask transforms with vectorized
  batch-FFT kernels, so the simulator itself runs the hot path faster.

Shape contract asserted below: batched < looped in simulated time on
every backend, batched wall-clock at least ~2x faster than looped on
the pure-numpy path, and identical scores from both modes.
"""

import time

import numpy as np
import pytest

from repro.core import MaskPlan, TpuBackend, make_tpu_chip, score_plan
from repro.core.pipeline import ExplanationPipeline
from repro.fft import fft_circular_convolve2d
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice

SHAPE = (32, 32)
BLOCK = (4, 4)


@pytest.fixture(scope="module")
def pair():
    rng = np.random.default_rng(0)
    x = rng.standard_normal(SHAPE)
    x[0, 0] += 5.0 * np.prod(SHAPE) ** 0.5
    kernel = rng.standard_normal(SHAPE)
    y = fft_circular_convolve2d(x, kernel)
    return x, kernel, y


def _simulated_seconds(device, pair, method):
    x, kernel, y = pair
    # Pair fusion isolates the per-pair batching axis this benchmark
    # measures; cross-pair wave fusion is bench_fleet_interpretation.py.
    pipeline = ExplanationPipeline(
        device, granularity="blocks", block_shape=BLOCK, eps=1e-8, method=method,
        fusion="pair",
    )
    return pipeline.run([(x, y)]).simulated_seconds


@pytest.mark.parametrize(
    "device_factory",
    [
        CpuDevice,
        GpuDevice,
        lambda: TpuBackend(make_tpu_chip(num_cores=128, precision="bf16")),
    ],
    ids=["cpu", "gpu", "tpu"],
)
def test_batched_simulated_seconds_beat_looped(device_factory, pair, capsys):
    looped = _simulated_seconds(device_factory(), pair, "loop")
    batched = _simulated_seconds(device_factory(), pair, "batched")
    assert batched < looped
    with capsys.disabled():
        name = device_factory().name
        print(
            f"\n  {name}: looped {looped * 1e3:9.3f} ms -> "
            f"batched {batched * 1e3:9.3f} ms "
            f"(simulated, {looped / batched:5.1f}x)"
        )


def test_tpu_gains_most_from_batching(pair):
    """The TPU's per-mask dispatch round trips dominate its looped cost,
    so batching buys a far larger factor there than on eager backends."""
    gains = {}
    for name, factory in [
        ("cpu", CpuDevice),
        ("tpu", lambda: TpuBackend(make_tpu_chip(num_cores=128, precision="bf16"))),
    ]:
        looped = _simulated_seconds(factory(), pair, "loop")
        batched = _simulated_seconds(factory(), pair, "batched")
        gains[name] = looped / batched
    assert gains["tpu"] > 5.0 * gains["cpu"]


def test_scores_identical_across_modes(pair):
    x, kernel, y = pair
    plan = MaskPlan.blocks(SHAPE, BLOCK)
    np.testing.assert_allclose(
        score_plan(x, kernel, y, plan, method="batched"),
        score_plan(x, kernel, y, plan, method="loop"),
        atol=1e-10,
    )


def test_batched_wall_clock_faster(pair):
    """The vectorized batch path must beat the per-mask Python loop in
    real time too (pure-numpy path, no device accounting).

    The structural floor is ~1.5x -- the loop runs three transforms per
    mask (input, re-transformed kernel, inverse) where the batch runs
    two -- before counting the removed per-mask Python dispatch.
    """
    x, kernel, y = pair
    plan = MaskPlan.elements(SHAPE)  # 1024 masks: enough to dominate noise

    def clock(method):
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            score_plan(x, kernel, y, plan, method=method)
            best = min(best, time.perf_counter() - start)
        return best

    looped = clock("loop")
    batched = clock("batched")
    print(
        f"\n  wall-clock: looped {looped * 1e3:8.1f} ms -> "
        f"batched {batched * 1e3:8.1f} ms ({looped / batched:4.1f}x)"
    )
    # Typical ratio is ~1.7x; assert only the direction so a loaded CI
    # machine cannot flake this (the deterministic speedup claims are
    # the simulated-seconds tests above).
    assert batched < looped


def test_benchmark_batched_pipeline(benchmark, pair):
    x, _, y = pair
    pipeline = ExplanationPipeline(
        CpuDevice(), granularity="blocks", block_shape=BLOCK, eps=1e-8
    )
    result = benchmark(pipeline.run, [(x, y)])
    assert result.simulated_seconds > 0
