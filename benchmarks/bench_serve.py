"""Online explanation serving: micro-batched waves vs per-request serial.

The serving-layer benchmark (MLPerf Inference server scenario, in
simulated seconds): seeded Poisson traffic of single ``(x, y)``
explanation requests is driven through two configurations of
:class:`repro.serve.ExplanationService` on the simulated TPU backend:

* **serial**  -- the per-request baseline: ``max_batch_pairs=1``,
  ``max_wait_seconds=0``, no cache; every request pays its own program
  dispatch, exactly as an RPC-per-request deployment would;
* **batched** -- the dynamic micro-batcher: requests coalesce per
  ``(granularity, precision)`` key under a max-wait/max-batch policy
  and dispatch as wave-fused, infeed-pipelined fleet batches.

The report sweeps arrival rates and prints, per service, **goodput**
(completed requests per elapsed simulated second) and the
p50/p95/p99 latency percentiles from the simulated clock, plus a
cache section replaying a trace against a warm content-addressed cache.

Contracts asserted (pytest, and by the ``--quick`` CI smoke):

* batched goodput >= 5x serial at the default arrival rate with 100+
  requests (and strictly above serial at every swept rate);
* cache-hit responses are **bit-identical** to cold responses, and the
  warm-replay pass records **zero kernel-spectrum batches** (zero
  device work of any kind);
* the latency ledger is deterministic: same seed, same trace => same
  ledger.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
"""

import argparse
import sys

import numpy as np

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.serve import ExplanationService, poisson_requests

SHAPE = (16, 16)
BLOCK = (4, 4)
DEFAULT_RATE = 400.0  # requests per simulated second
DEFAULT_COUNT = 120  # acceptance asks for 100+ seeded arrivals
SWEEP_RATES = (100.0, 400.0, 1600.0)
GOODPUT_FACTOR = 5.0  # batched must clear this multiple of serial


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def batched_service(device=None, **kwargs):
    config = dict(
        granularity="blocks", block_shape=BLOCK, eps=1e-8,
        max_wait_seconds=0.05, max_batch_pairs=32,
    )
    config.update(kwargs)
    return ExplanationService(device or small_backend(), **config)


def serial_service(device=None):
    """The per-request baseline: no batching window, no cache."""
    return batched_service(
        device, max_wait_seconds=0.0, max_batch_pairs=1, cache_max_bytes=None
    )


def request_trace(count=DEFAULT_COUNT, rate=DEFAULT_RATE, seed=0, **kwargs):
    return poisson_requests(count, rate=rate, seed=seed, shape=SHAPE, **kwargs)


# ----------------------------------------------------------------------
# Contracts (collected by pytest; CI runs this file with the benches)
# ----------------------------------------------------------------------


def test_batched_goodput_at_least_5x_serial():
    """The serving acceptance contract: at the default arrival rate,
    100+ seeded Poisson requests, micro-batched goodput clears 5x the
    per-request serial baseline on the simulated TPU."""
    trace = request_trace()
    batched = batched_service(cache_max_bytes=None).process(trace)
    serial = serial_service().process(trace)
    assert batched.completed_count == serial.completed_count == len(trace)
    assert batched.goodput >= GOODPUT_FACTOR * serial.goodput
    # Batching buys throughput by spending bounded queueing latency;
    # under saturation it wins the tail outright.
    assert batched.p95 < serial.p95
    assert batched.p95 > 0.0  # reported from the simulated clock


def test_batched_beats_serial_at_every_swept_rate():
    for rate in SWEEP_RATES:
        trace = request_trace(rate=rate)
        batched = batched_service(cache_max_bytes=None).process(trace)
        serial = serial_service().process(trace)
        assert batched.goodput > serial.goodput, f"rate {rate}"


def test_cache_hits_bit_identical_with_zero_kernel_spectrum_batches():
    """A warm replay answers every request from the content-addressed
    cache: zero device records of any kind (in particular zero
    fft2_kernel_batch entries) and responses bit-identical to cold."""
    service = batched_service()
    trace = request_trace(count=40)
    cold = service.process(trace)
    warm = service.process(trace)
    assert warm.cache_hits == len(trace)
    assert warm.num_dispatches == 0
    assert warm.stats.op_counts.get("fft2_kernel_batch", 0) == 0
    assert warm.stats.op_counts.get("dispatch", 0) == 0
    assert not warm.stats.op_counts
    cold_results, warm_results = cold.results_by_id(), warm.results_by_id()
    for request_id, result in cold_results.items():
        np.testing.assert_array_equal(
            warm_results[request_id].scores, result.scores
        )
        np.testing.assert_array_equal(
            warm_results[request_id].kernel, result.kernel
        )
        assert warm_results[request_id].residual == result.residual


def test_latency_ledger_is_deterministic():
    first = batched_service().process(request_trace(seed=21, count=40))
    second = batched_service().process(request_trace(seed=21, count=40))
    assert first.ledger.signature() == second.ledger.signature()


# ----------------------------------------------------------------------
# Report + CLI smoke mode
# ----------------------------------------------------------------------


def _row(name, rate, report) -> str:
    return (
        f"{name:8s} {rate:6.0f} {report.completed_count:5d} "
        f"{report.rejected_count:4d} {report.num_dispatches:5d} "
        f"{report.goodput:10.1f} "
        f"{report.p50 * 1e3:9.1f} {report.p95 * 1e3:9.1f} "
        f"{report.p99 * 1e3:9.1f}"
    )


def _sweep_report(count: int, rates) -> str:
    lines = [
        "ONLINE EXPLANATION SERVICE (simulated seconds; goodput = "
        "completed requests / elapsed)",
        f"({count} seeded Poisson arrivals per rate on {small_backend().name}; "
        "batched = 32-pair max-wait-50ms micro-batches, serial = one "
        "dispatch per request)",
        f"{'service':8s} {'rate':>6s} {'done':>5s} {'rej':>4s} {'disp':>5s} "
        f"{'goodput':>10s} {'p50(ms)':>9s} {'p95(ms)':>9s} {'p99(ms)':>9s}",
    ]
    for rate in rates:
        trace = request_trace(count=count, rate=rate)
        batched = batched_service(cache_max_bytes=None).process(trace)
        serial = serial_service().process(trace)
        lines.append(_row("batched", rate, batched))
        lines.append(_row("serial", rate, serial))
        lines.append(
            f"{'':8s} {'':6s} -> goodput gain "
            f"{batched.goodput / serial.goodput:.2f}x, p95 gain "
            f"{serial.p95 / batched.p95:.2f}x"
        )
    return "\n".join(lines)


def _cache_report(count: int) -> str:
    service = batched_service()
    trace = request_trace(count=count, repeat_fraction=0.5, seed=2)
    cold = service.process(trace)
    warm = service.process(trace)
    return "\n".join(
        [
            "CONTENT-ADDRESSED CACHE (same trace, 50% repeated inputs)",
            f"cold pass: {cold.cache_hits} hits / {cold.cache_misses} misses, "
            f"{cold.num_dispatches} dispatches, goodput {cold.goodput:.1f}",
            f"warm pass: {warm.cache_hits} hits / {warm.cache_misses} misses, "
            f"{warm.num_dispatches} dispatches, "
            f"{warm.stats.op_counts.get('fft2_kernel_batch', 0)} "
            f"kernel-spectrum batches, elapsed {warm.elapsed_seconds:.4f}s",
        ]
    )


def _smoke(count: int) -> int:
    """The CI serving contract: batched strictly above serial (and at
    the >=5x acceptance bar) at the default rate, cache-hit path free
    of kernel-spectrum batches, responses bit-identical."""
    trace = request_trace(count=count)
    batched = batched_service(cache_max_bytes=None).process(trace)
    serial = serial_service().process(trace)
    print(
        f"served {count} Poisson arrivals at {DEFAULT_RATE:.0f}/s: "
        f"batched goodput {batched.goodput:.1f} "
        f"({batched.num_dispatches} dispatches, p95 {batched.p95 * 1e3:.1f}ms) "
        f"vs serial {serial.goodput:.1f} "
        f"(p95 {serial.p95 * 1e3:.1f}ms) -> "
        f"{batched.goodput / serial.goodput:.2f}x"
    )
    if not batched.goodput > serial.goodput:
        print(
            "FAIL: batched-service goodput must be strictly above "
            "per-request serial",
            file=sys.stderr,
        )
        return 1
    if batched.goodput < GOODPUT_FACTOR * serial.goodput:
        print(
            f"FAIL: batched-service goodput must clear {GOODPUT_FACTOR}x "
            "serial at the default arrival rate",
            file=sys.stderr,
        )
        return 1

    cache_service = batched_service()
    cold = cache_service.process(trace)
    warm = cache_service.process(trace)
    kernel_batches = warm.stats.op_counts.get("fft2_kernel_batch", 0)
    print(
        f"warm replay: {warm.cache_hits}/{len(trace)} cache hits, "
        f"{warm.num_dispatches} dispatches, "
        f"{kernel_batches} kernel-spectrum batches"
    )
    if kernel_batches != 0 or warm.num_dispatches != 0:
        print(
            "FAIL: the cache-hit path must record zero kernel-spectrum "
            "batches (and zero dispatches)",
            file=sys.stderr,
        )
        return 1
    cold_results, warm_results = cold.results_by_id(), warm.results_by_id()
    for request_id, result in cold_results.items():
        if not np.array_equal(warm_results[request_id].scores, result.scores):
            print(
                "FAIL: cache-hit scores diverge from cold scores",
                file=sys.stderr,
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: default rate only, smaller sweep",
    )
    args = parser.parse_args(argv)

    count = 100 if args.quick else DEFAULT_COUNT
    status = _smoke(count)
    if status:
        return status
    print()
    print(_sweep_report(count, (DEFAULT_RATE,) if args.quick else SWEEP_RATES))
    print()
    print(_cache_report(60 if args.quick else count))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
