"""Online explanation serving: micro-batched waves vs per-request serial.

The serving-layer benchmark (MLPerf Inference server scenario, in
simulated seconds): seeded Poisson traffic of single ``(x, y)``
explanation requests is driven through two configurations of
:class:`repro.serve.ExplanationService` on the simulated TPU backend:

* **serial**  -- the per-request baseline: ``max_batch_pairs=1``,
  ``max_wait_seconds=0``, no cache; every request pays its own program
  dispatch, exactly as an RPC-per-request deployment would;
* **batched** -- the dynamic micro-batcher: requests coalesce per
  ``(granularity, precision)`` key under a max-wait/max-batch policy
  and dispatch as wave-fused, infeed-pipelined fleet batches.

The report sweeps arrival rates and prints, per service, **goodput**
(completed requests per elapsed simulated second) and the
p50/p95/p99 latency percentiles from the simulated clock, plus a
cache section replaying a trace against a warm content-addressed cache.

The **autopilot** section drives seeded *bursty* traces through the
same sweep and compares the :class:`repro.serve.BatchController`
(AIMD per-key tuning toward a p95 target) against a grid of static
``(max_wait_seconds, max_batch_pairs)`` settings, then projects the
autopilot's ledger into a capacity table (chips needed at rate R,
simulated cost per million explanations).

Contracts asserted (pytest, and by the ``--quick`` CI smoke):

* batched goodput >= 5x serial at the default arrival rate with 100+
  requests (and strictly above serial at every swept rate);
* the autopilot meets the p95 target at **every** swept rate while
  every static setting misses it at one rate or more, with goodput no
  worse than the best static at 400 req/s -- and bit-identical scores;
* cache-hit responses are **bit-identical** to cold responses, and the
  warm-replay pass records **zero kernel-spectrum batches** (zero
  device work of any kind);
* the latency ledger is deterministic: same seed, same trace => same
  ledger.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_serve.py [--quick] [--json PATH]

The full run writes the sweep + capacity artifact to
``BENCH_serve_autopilot.json`` (or ``--json PATH``); ``--quick`` writes
it only when ``--json`` is given.
"""

import argparse
import dataclasses
import functools
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.serve import (
    BatchController,
    ExplanationService,
    bursty_requests,
    capacity_table,
    format_capacity_table,
    poisson_requests,
)

SHAPE = (16, 16)
BLOCK = (4, 4)
DEFAULT_RATE = 400.0  # requests per simulated second
DEFAULT_COUNT = 120  # acceptance asks for 100+ seeded arrivals
SWEEP_RATES = (100.0, 400.0, 1600.0)
GOODPUT_FACTOR = 5.0  # batched must clear this multiple of serial

#: The serving SLO the autopilot is steered toward: under the ~100ms+
#: p95 the best static setting pays somewhere in the bursty sweep.
AUTOPILOT_TARGET = 0.09
BURST_SIZE = 20  # arrivals per closed burst in the autopilot traces
AUTOPILOT_SEED = 7

#: The static grid the autopilot must beat across the sweep: the
#: PR-5 default, a tight low-latency pair, and per-request serial.
STATIC_GRID = {
    "static-50ms/32": dict(max_wait_seconds=0.05, max_batch_pairs=32),
    "static-10ms/8": dict(max_wait_seconds=0.01, max_batch_pairs=8),
    "serial": dict(max_wait_seconds=0.0, max_batch_pairs=1),
}
DEFAULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve_autopilot.json"


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def batched_service(device=None, **kwargs):
    config = dict(
        granularity="blocks", block_shape=BLOCK, eps=1e-8,
        max_wait_seconds=0.05, max_batch_pairs=32,
    )
    config.update(kwargs)
    return ExplanationService(device or small_backend(), **config)


def serial_service(device=None):
    """The per-request baseline: no batching window, no cache."""
    return batched_service(
        device, max_wait_seconds=0.0, max_batch_pairs=1, cache_max_bytes=None
    )


def request_trace(count=DEFAULT_COUNT, rate=DEFAULT_RATE, seed=0, **kwargs):
    return poisson_requests(count, rate=rate, seed=seed, shape=SHAPE, **kwargs)


def bursty_trace(rate, count=DEFAULT_COUNT, seed=AUTOPILOT_SEED):
    """Closed bursts of BURST_SIZE arrivals averaging ``rate`` req/s."""
    return bursty_requests(
        count,
        burst_size=BURST_SIZE,
        burst_gap=BURST_SIZE / rate,
        seed=seed,
        shape=SHAPE,
    )


def autopilot_service(device=None):
    return batched_service(
        device,
        cache_max_bytes=None,
        controller=BatchController(target_p95_seconds=AUTOPILOT_TARGET),
    )


def static_service(name, device=None):
    return batched_service(device, cache_max_bytes=None, **STATIC_GRID[name])


@functools.lru_cache(maxsize=None)
def _autopilot_reports(rate):
    """Autopilot + the full static grid on the same seeded bursty trace.

    Cached so the pytest contracts, the report sections, the ``--quick``
    assertion, and the JSON artifact all share one sweep.
    """
    trace = bursty_trace(rate)
    reports = {"autopilot": autopilot_service().process(trace)}
    for name in STATIC_GRID:
        reports[name] = static_service(name).process(trace)
    return reports


# ----------------------------------------------------------------------
# Contracts (collected by pytest; CI runs this file with the benches)
# ----------------------------------------------------------------------


def test_batched_goodput_at_least_5x_serial():
    """The serving acceptance contract: at the default arrival rate,
    100+ seeded Poisson requests, micro-batched goodput clears 5x the
    per-request serial baseline on the simulated TPU."""
    trace = request_trace()
    batched = batched_service(cache_max_bytes=None).process(trace)
    serial = serial_service().process(trace)
    assert batched.completed_count == serial.completed_count == len(trace)
    assert batched.goodput >= GOODPUT_FACTOR * serial.goodput
    # Batching buys throughput by spending bounded queueing latency;
    # under saturation it wins the tail outright.
    assert batched.p95 < serial.p95
    assert batched.p95 > 0.0  # reported from the simulated clock


def test_batched_beats_serial_at_every_swept_rate():
    for rate in SWEEP_RATES:
        trace = request_trace(rate=rate)
        batched = batched_service(cache_max_bytes=None).process(trace)
        serial = serial_service().process(trace)
        assert batched.goodput > serial.goodput, f"rate {rate}"


def test_cache_hits_bit_identical_with_zero_kernel_spectrum_batches():
    """A warm replay answers every request from the content-addressed
    cache: zero device records of any kind (in particular zero
    fft2_kernel_batch entries) and responses bit-identical to cold."""
    service = batched_service()
    trace = request_trace(count=40)
    cold = service.process(trace)
    warm = service.process(trace)
    assert warm.cache_hits == len(trace)
    assert warm.num_dispatches == 0
    assert warm.stats.op_counts.get("fft2_kernel_batch", 0) == 0
    assert warm.stats.op_counts.get("dispatch", 0) == 0
    assert not warm.stats.op_counts
    cold_results, warm_results = cold.results_by_id(), warm.results_by_id()
    for request_id, result in cold_results.items():
        np.testing.assert_array_equal(
            warm_results[request_id].scores, result.scores
        )
        np.testing.assert_array_equal(
            warm_results[request_id].kernel, result.kernel
        )
        assert warm_results[request_id].residual == result.residual


def test_latency_ledger_is_deterministic():
    first = batched_service().process(request_trace(seed=21, count=40))
    second = batched_service().process(request_trace(seed=21, count=40))
    assert first.ledger.signature() == second.ledger.signature()


def test_autopilot_meets_p95_target_every_static_misses_somewhere():
    """The headline autopilot contract: the controller holds the p95
    SLO at every swept rate of the seeded bursty trace, while each
    static (wait, cap) pairing misses it at one rate or more."""
    for rate in SWEEP_RATES:
        report = _autopilot_reports(rate)["autopilot"]
        assert report.completed_count == DEFAULT_COUNT, f"rate {rate}"
        assert report.p95 <= AUTOPILOT_TARGET, (
            f"autopilot p95 {report.p95 * 1e3:.1f}ms over target at {rate}"
        )
    for name in STATIC_GRID:
        assert any(
            _autopilot_reports(rate)[name].p95 > AUTOPILOT_TARGET
            for rate in SWEEP_RATES
        ), f"static {name} never misses the target; grid too weak"


def test_autopilot_goodput_no_worse_than_best_static_at_default_rate():
    reports = _autopilot_reports(DEFAULT_RATE)
    best_static = max(reports[name].goodput for name in STATIC_GRID)
    assert reports["autopilot"].goodput >= best_static


def test_autopilot_scores_bit_identical_to_static():
    """Adaptation moves *when* pairs dispatch, never *what* they score."""
    reports = _autopilot_reports(DEFAULT_RATE)
    autopilot = reports["autopilot"].results_by_id()
    for name in STATIC_GRID:
        static = reports[name].results_by_id()
        assert autopilot.keys() == static.keys()
        for request_id, result in static.items():
            np.testing.assert_array_equal(
                autopilot[request_id].scores, result.scores
            )


def test_capacity_plan_scales_with_rate():
    report = _autopilot_reports(DEFAULT_RATE)["autopilot"]
    plans = capacity_table(report, rates=SWEEP_RATES)
    chips = [plan.chips_needed for plan in plans]
    assert chips == sorted(chips)  # more traffic never needs fewer chips
    assert all(plan.chips_needed >= 1 for plan in plans)
    assert all(plan.cost_per_million > 0.0 for plan in plans)
    assert all(plan.per_chip_rate > 0.0 for plan in plans)


# ----------------------------------------------------------------------
# Report + CLI smoke mode
# ----------------------------------------------------------------------


def _row(name, rate, report) -> str:
    return (
        f"{name:8s} {rate:6.0f} {report.completed_count:5d} "
        f"{report.rejected_count:4d} {report.num_dispatches:5d} "
        f"{report.goodput:10.1f} "
        f"{report.p50 * 1e3:9.1f} {report.p95 * 1e3:9.1f} "
        f"{report.p99 * 1e3:9.1f}"
    )


def _sweep_report(count: int, rates) -> str:
    lines = [
        "ONLINE EXPLANATION SERVICE (simulated seconds; goodput = "
        "completed requests / elapsed)",
        f"({count} seeded Poisson arrivals per rate on {small_backend().name}; "
        "batched = 32-pair max-wait-50ms micro-batches, serial = one "
        "dispatch per request)",
        f"{'service':8s} {'rate':>6s} {'done':>5s} {'rej':>4s} {'disp':>5s} "
        f"{'goodput':>10s} {'p50(ms)':>9s} {'p95(ms)':>9s} {'p99(ms)':>9s}",
    ]
    for rate in rates:
        trace = request_trace(count=count, rate=rate)
        batched = batched_service(cache_max_bytes=None).process(trace)
        serial = serial_service().process(trace)
        lines.append(_row("batched", rate, batched))
        lines.append(_row("serial", rate, serial))
        lines.append(
            f"{'':8s} {'':6s} -> goodput gain "
            f"{batched.goodput / serial.goodput:.2f}x, p95 gain "
            f"{serial.p95 / batched.p95:.2f}x"
        )
    return "\n".join(lines)


def _autopilot_report() -> str:
    lines = [
        "SLO AUTOPILOT (seeded bursty arrivals, bursts of "
        f"{BURST_SIZE}; target p95 <= {AUTOPILOT_TARGET * 1e3:.0f}ms)",
        f"{'service':15s} {'rate':>6s} {'slo':>4s} {'p95(ms)':>9s} "
        f"{'p99(ms)':>9s} {'goodput':>10s} {'disp':>5s}",
    ]
    for rate in SWEEP_RATES:
        reports = _autopilot_reports(rate)
        for name in ("autopilot", *STATIC_GRID):
            report = reports[name]
            flag = "ok" if report.p95 <= AUTOPILOT_TARGET else "MISS"
            lines.append(
                f"{name:15s} {rate:6.0f} {flag:>4s} "
                f"{report.p95 * 1e3:9.1f} {report.p99 * 1e3:9.1f} "
                f"{report.goodput:10.1f} {report.num_dispatches:5d}"
            )
    return "\n".join(lines)


def _capacity_report() -> str:
    report = _autopilot_reports(DEFAULT_RATE)["autopilot"]
    plans = capacity_table(report, rates=SWEEP_RATES)
    return "\n".join(
        [
            "CAPACITY PLAN (autopilot ledger at "
            f"{DEFAULT_RATE:.0f} req/s; 70% utilization ceiling)",
            format_capacity_table(plans),
        ]
    )


def _artifact() -> dict:
    """The sweep table + capacity rows written as the JSON artifact."""
    sweep = []
    for rate in SWEEP_RATES:
        for name, report in _autopilot_reports(rate).items():
            sweep.append(
                {
                    "service": name,
                    "rate": rate,
                    "completed": report.completed_count,
                    "dispatches": report.num_dispatches,
                    "goodput": round(report.goodput, 3),
                    "p50_ms": round(report.p50 * 1e3, 3),
                    "p95_ms": round(report.p95 * 1e3, 3),
                    "p99_ms": round(report.p99 * 1e3, 3),
                    "meets_target": bool(report.p95 <= AUTOPILOT_TARGET),
                }
            )
    plans = capacity_table(
        _autopilot_reports(DEFAULT_RATE)["autopilot"], rates=SWEEP_RATES
    )
    return {
        "benchmark": "serve_autopilot",
        "backend": small_backend().name,
        "target_p95_seconds": AUTOPILOT_TARGET,
        "trace": {
            "kind": "bursty",
            "count": DEFAULT_COUNT,
            "burst_size": BURST_SIZE,
            "seed": AUTOPILOT_SEED,
            "shape": list(SHAPE),
        },
        "sweep_rates": list(SWEEP_RATES),
        "sweep": sweep,
        "capacity": [dataclasses.asdict(plan) for plan in plans],
    }


def _cache_report(count: int) -> str:
    service = batched_service()
    trace = request_trace(count=count, repeat_fraction=0.5, seed=2)
    cold = service.process(trace)
    warm = service.process(trace)
    return "\n".join(
        [
            "CONTENT-ADDRESSED CACHE (same trace, 50% repeated inputs)",
            f"cold pass: {cold.cache_hits} hits / {cold.cache_misses} misses, "
            f"{cold.num_dispatches} dispatches, goodput {cold.goodput:.1f}",
            f"warm pass: {warm.cache_hits} hits / {warm.cache_misses} misses, "
            f"{warm.num_dispatches} dispatches, "
            f"{warm.stats.op_counts.get('fft2_kernel_batch', 0)} "
            f"kernel-spectrum batches, elapsed {warm.elapsed_seconds:.4f}s",
        ]
    )


def _smoke(count: int) -> int:
    """The CI serving contract: batched strictly above serial (and at
    the >=5x acceptance bar) at the default rate, cache-hit path free
    of kernel-spectrum batches, responses bit-identical."""
    trace = request_trace(count=count)
    batched = batched_service(cache_max_bytes=None).process(trace)
    serial = serial_service().process(trace)
    print(
        f"served {count} Poisson arrivals at {DEFAULT_RATE:.0f}/s: "
        f"batched goodput {batched.goodput:.1f} "
        f"({batched.num_dispatches} dispatches, p95 {batched.p95 * 1e3:.1f}ms) "
        f"vs serial {serial.goodput:.1f} "
        f"(p95 {serial.p95 * 1e3:.1f}ms) -> "
        f"{batched.goodput / serial.goodput:.2f}x"
    )
    if not batched.goodput > serial.goodput:
        print(
            "FAIL: batched-service goodput must be strictly above "
            "per-request serial",
            file=sys.stderr,
        )
        return 1
    if batched.goodput < GOODPUT_FACTOR * serial.goodput:
        print(
            f"FAIL: batched-service goodput must clear {GOODPUT_FACTOR}x "
            "serial at the default arrival rate",
            file=sys.stderr,
        )
        return 1

    cache_service = batched_service()
    cold = cache_service.process(trace)
    warm = cache_service.process(trace)
    kernel_batches = warm.stats.op_counts.get("fft2_kernel_batch", 0)
    print(
        f"warm replay: {warm.cache_hits}/{len(trace)} cache hits, "
        f"{warm.num_dispatches} dispatches, "
        f"{kernel_batches} kernel-spectrum batches"
    )
    if kernel_batches != 0 or warm.num_dispatches != 0:
        print(
            "FAIL: the cache-hit path must record zero kernel-spectrum "
            "batches (and zero dispatches)",
            file=sys.stderr,
        )
        return 1
    cold_results, warm_results = cold.results_by_id(), warm.results_by_id()
    for request_id, result in cold_results.items():
        if not np.array_equal(warm_results[request_id].scores, result.scores):
            print(
                "FAIL: cache-hit scores diverge from cold scores",
                file=sys.stderr,
            )
            return 1
    return 0


def _autopilot_smoke() -> int:
    """The CI autopilot contract: with the controller enabled, p95 must
    hold the target at the highest admitted rate of the bursty sweep."""
    top_rate = max(SWEEP_RATES)
    report = _autopilot_reports(top_rate)["autopilot"]
    print(
        f"autopilot at {top_rate:.0f}/s bursty: "
        f"p95 {report.p95 * 1e3:.1f}ms "
        f"(target {AUTOPILOT_TARGET * 1e3:.0f}ms), "
        f"goodput {report.goodput:.1f}, "
        f"{report.num_dispatches} dispatches"
    )
    if report.completed_count != DEFAULT_COUNT:
        print(
            "FAIL: autopilot must complete every admitted request",
            file=sys.stderr,
        )
        return 1
    if report.p95 > AUTOPILOT_TARGET:
        print(
            f"FAIL: autopilot p95 {report.p95 * 1e3:.1f}ms exceeds the "
            f"{AUTOPILOT_TARGET * 1e3:.0f}ms target at the highest "
            "admitted rate",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: default rate only, smaller sweep",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the autopilot sweep + capacity artifact here "
        "(full runs default to BENCH_serve_autopilot.json; --quick "
        "writes only when this flag is given)",
    )
    args = parser.parse_args(argv)

    count = 100 if args.quick else DEFAULT_COUNT
    status = _smoke(count) or _autopilot_smoke()
    if status:
        return status
    print()
    print(_sweep_report(count, (DEFAULT_RATE,) if args.quick else SWEEP_RATES))
    print()
    print(_autopilot_report())
    print()
    print(_capacity_report())
    print()
    print(_cache_report(60 if args.quick else count))

    json_path = args.json if args.json is not None else (
        None if args.quick else DEFAULT_JSON
    )
    if json_path is not None:
        json_path.write_text(json.dumps(_artifact(), indent=2) + "\n")
        print(f"\nwrote {json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
