"""Figure 5: interpretation of an image classification result.

Regenerates the paper's Figure 5: block-level contribution factors on a
cat-style image.  The paper's claim is qualitative -- "the cat's face
(central block) and ear (mid-up block) are the keys to be recognized as
'cat'" -- so the contract is a ranking: the planted face block must
receive the top contribution factor and the ear block must be second.
"""

import numpy as np
import pytest

from repro.baselines import occlusion_saliency
from repro.bench.harness import format_figure5, run_figure5
from repro.fft import fft_circular_convolve2d


@pytest.fixture(scope="module")
def figure5():
    return run_figure5()


def test_print_figure5(figure5, capsys):
    with capsys.disabled():
        print()
        print(format_figure5(figure5))


def test_face_block_dominates(figure5):
    assert figure5.face_is_top


def test_ear_block_in_top_two(figure5):
    assert figure5.ear_in_top_two


def test_background_blocks_are_negligible(figure5):
    """Non-salient blocks should carry a small fraction of the top weight."""
    grid = figure5.grid.copy()
    fr, fc = figure5.face_block
    er, ec = figure5.ear_block
    grid[fr, fc] = 0.0
    grid[er, ec] = 0.0
    assert grid.max() < 0.25


def test_stability_across_seeds():
    """The ranking is a property of the method, not of one seed."""
    hits = 0
    for seed in range(5):
        result = run_figure5(seed=seed)
        hits += int(result.face_is_top)
    assert hits >= 4


def test_agreement_with_occlusion_baseline(figure5):
    """The black-box occlusion explainer must agree on the top block."""
    rng = np.random.default_rng(7)  # mirrors run_figure5's default seed
    response_kernel = rng.standard_normal(figure5.image.shape)

    def black_box(matrix):
        return fft_circular_convolve2d(matrix, response_kernel)

    occlusion_grid = occlusion_saliency(black_box, figure5.image, (8, 8))
    top = np.unravel_index(np.argmax(occlusion_grid), occlusion_grid.shape)
    assert tuple(top) == figure5.face_block


def test_benchmark_figure5(benchmark):
    result = benchmark(run_figure5)
    assert result.grid.shape == (4, 4)
