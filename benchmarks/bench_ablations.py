"""Ablation benches for the design choices DESIGN.md calls out.

Not in the paper -- these isolate each mechanism's contribution so the
speedup story is explainable rather than monolithic:

* int8 quantization vs bf16 vs fp32 MXU modes;
* the quantized **batched** path: precision-axis waves vs fp64 waves
  (error bounded, dispatch structure unchanged, MXU-rate speedup);
* data decomposition (Algorithm 1) on vs off (core-count sweep);
* scheduler overlap (double-buffered weights, DMA overlap) on vs off;
* complex-matmul decomposition: 4 real products vs 3 (Karatsuba);
* multi-input parallelism (Section III-D) vs serial pair processing.
"""

import numpy as np
import pytest

from repro.core import DecomposedFourier, MultiInputScheduler, make_tpu_chip
from repro.core.backend import TpuBackend
from repro.hw import (
    Instruction,
    MxuConfig,
    Opcode,
    Program,
    Scheduler,
    TpuChip,
    TpuChipConfig,
    TpuCore,
    TpuCoreConfig,
    matmul_cycles,
)


class TestQuantizationAblation:
    """Quantization is one of the TPU's two speed mechanisms (Sec II-A)."""

    @pytest.mark.parametrize("m,k,n", [(256, 256, 256), (1024, 1024, 1024)])
    def test_int8_beats_fp32_cycles(self, m, k, n):
        int8 = matmul_cycles(m, k, n, MxuConfig(precision="int8"))
        fp32 = matmul_cycles(m, k, n, MxuConfig(precision="fp32"))
        assert fp32.cycles > 2 * int8.cycles

    def test_bf16_between_int8_and_fp32(self):
        shapes = (512, 512, 512)
        int8 = matmul_cycles(*shapes, MxuConfig(precision="int8")).cycles
        bf16 = matmul_cycles(*shapes, MxuConfig(precision="bf16")).cycles
        fp32 = matmul_cycles(*shapes, MxuConfig(precision="fp32")).cycles
        assert int8 <= bf16 < fp32

    def test_quantization_accuracy_cost_is_bounded(self):
        """The speed win must not destroy numerics: int8 matmul error
        stays within a few percent on unit-scale data."""
        from repro.hw import quantized_matmul

        rng = np.random.default_rng(0)
        a = rng.standard_normal((64, 64))
        b = rng.standard_normal((64, 64))
        exact = a @ b
        approx = quantized_matmul(a, b)
        rel = np.abs(exact - approx).max() / np.abs(exact).max()
        assert rel < 0.05


class TestQuantizedBatchAblation:
    """The precision axis of the batched/wave convolution stack: int8 and
    bf16 waves must be cheaper than fp32/fp64 waves with the *same*
    launch structure, quantization error must respect the documented
    bound, and batched quantization must add no error over looped
    quantization (bit-identical scores)."""

    SHAPE = (16, 16)
    BLOCK = (4, 4)

    def _backend(self):
        return TpuBackend(
            make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=8, mxu_cols=8)
        )

    def _pairs(self, count=4, seed=0):
        from repro.bench.workloads import planted_interpretation_pairs

        return planted_interpretation_pairs(count, shape=self.SHAPE, seed=seed)

    def _run(self, precision, **kwargs):
        from repro.core.pipeline import ExplanationPipeline

        return ExplanationPipeline(
            self._backend(), granularity="blocks", block_shape=self.BLOCK,
            eps=1e-8, precision=precision, **kwargs,
        ).run(self._pairs())

    def test_precision_ladder_prices_batched_conv(self):
        backend = self._backend()
        seconds = {
            name: backend.batch_conv_seconds(64, 256, 256, precision=name)
            for name in ("int8", "bf16", "fp32", "fp64")
        }
        assert seconds["int8"] <= seconds["bf16"] < seconds["fp32"] < seconds["fp64"]

    def test_quantized_wave_beats_fp64_wave_with_same_structure(self):
        int8 = self._run("int8")
        fp64 = self._run("fp64")
        assert int8.simulated_seconds < fp64.simulated_seconds
        assert int8.stats.op_counts == fp64.stats.op_counts  # launch parity

    def test_batched_quantization_adds_no_error_over_loop(self):
        int8_wave = self._run("int8")
        int8_loop = self._run("int8", method="loop")
        for a, b in zip(int8_wave.explanations, int8_loop.explanations):
            np.testing.assert_array_equal(a.scores, b.scores)

    def test_int8_batched_error_within_documented_bound(self):
        from repro.hw.quantize import quantized_score_error_bound

        exact = self._run("fp64")
        int8 = self._run("int8")
        for (x, _), a, b in zip(self._pairs(), int8.explanations, exact.explanations):
            bound = quantized_score_error_bound(x, b.kernel, bits=8)
            assert np.max(np.abs(a.scores - b.scores)) <= bound

    def test_precision_error_monotone(self):
        exact = self._run("fp64")

        def err(run):
            return max(
                float(np.max(np.abs(a.scores - b.scores)))
                for a, b in zip(run.explanations, exact.explanations)
            )

        int8_err = err(self._run("int8"))
        bf16_err = err(self._run("bf16"))
        assert int8_err > bf16_err > 0.0

    def test_modeled_quantized_fleet_speedup(self):
        """The cost model agrees with the ablation's direction: at 100
        pairs a quantized wave fleet is modeled strictly faster than an
        fp64 one on the full-size chip."""
        from repro.bench.workloads import (
            fleet_interpretation_seconds,
            vgg19_interpretation_workload,
        )

        workload = vgg19_interpretation_workload(pairs=100)
        seconds = {
            name: fleet_interpretation_seconds(
                TpuBackend(make_tpu_chip()), workload, fusion="wave",
                precision=name,
            )
            for name in ("int8", "bf16", "fp64")
        }
        assert seconds["int8"] < seconds["bf16"] < seconds["fp64"]


class TestDecompositionAblation:
    """Algorithm 1 on/off: the core-count sweep of the sharded solve."""

    @pytest.fixture(scope="class")
    def chip(self):
        return make_tpu_chip(num_cores=16, precision="fp32", mxu_rows=16, mxu_cols=16)

    def test_decomposition_scales_compute(self, chip, benchmark):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((128, 128))

        def sweep():
            times = {}
            for cores in (1, 4, 16):
                chip.reset()
                _, report = DecomposedFourier(chip, cores=cores).fft2(x)
                times[cores] = report.compute_seconds
            return times

        times = benchmark(sweep)
        assert times[16] < times[4] < times[1]
        # Strong scaling is sublinear (fixed pipeline fill per shard).
        assert times[1] / times[16] > 4.0

    def test_communication_grows_with_cores(self, chip):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((64, 64))
        comm = {}
        for cores in (2, 8, 16):
            chip.reset()
            _, report = DecomposedFourier(chip, cores=cores).fft2(x)
            comm[cores] = report.communication_seconds
        assert comm[16] > comm[2]

    def test_backend_cost_model_crossover(self):
        """Sharding pays only when per-core compute amortizes the
        reassembly collective: at 4096x4096 eight cores beat one, while
        at 256x256 they lose to the all-reduce latency.  Both directions
        are the physics Algorithm 1 lives with."""
        one = TpuBackend(make_tpu_chip(num_cores=1))
        eight = TpuBackend(make_tpu_chip(num_cores=8))
        assert eight.fft2_seconds(4096, 4096) < one.fft2_seconds(4096, 4096)
        assert eight.fft2_seconds(256, 256) > one.fft2_seconds(256, 256)


class TestSchedulerOverlapAblation:
    """The ISA scheduler's overlap features, priced on one instruction mix."""

    def make_program(self):
        program = Program()
        for _ in range(8):
            program.emit(Instruction(Opcode.LOAD_WEIGHTS, cycles=256))
            program.emit(Instruction(Opcode.MATMUL, cycles=1024))
            program.emit(Instruction(Opcode.READ_HOST, seconds=1e-6))
        return program

    def test_weight_load_overlap_saves_cycles(self):
        program = self.make_program()
        with_overlap = Scheduler(700e6, overlap_weight_load=True).run(program)
        without = Scheduler(700e6, overlap_weight_load=False).run(program)
        assert with_overlap.seconds < without.seconds
        assert with_overlap.hidden_weight_load_cycles == 7 * 256

    def test_dma_overlap_saves_time(self):
        program = self.make_program()
        with_overlap = Scheduler(700e6, overlap_dma=True).run(program)
        without = Scheduler(700e6, overlap_dma=False).run(program)
        assert with_overlap.seconds < without.seconds

    def test_benchmark_scheduler(self, benchmark):
        program = self.make_program()
        scheduler = Scheduler(700e6)
        result = benchmark(scheduler.run, program)
        assert result.seconds > 0


class TestComplexMatmulAblation:
    """4 real products (naive) vs 3 (Karatsuba-style) per complex matmul."""

    def test_three_product_decomposition_saves_a_quarter(self):
        backend = TpuBackend(make_tpu_chip(num_cores=8))
        naive = backend.fft2_seconds(512, 512)
        backend.complex_matmul_real_products = 3
        karatsuba = backend.fft2_seconds(512, 512)
        # Communication is unchanged; compute drops by 1/4.
        assert karatsuba < naive
        assert karatsuba > 0.7 * naive


class TestMultiInputAblation:
    """Section III-D: concurrent pairs vs one-at-a-time."""

    def test_parallel_batch_beats_serial(self, benchmark):
        chip = make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=16, mxu_cols=16)
        rng = np.random.default_rng(3)
        inputs = [rng.standard_normal((64, 64)) for _ in range(8)]

        def run():
            chip.reset()
            return MultiInputScheduler(chip).fft2_batch(inputs)

        batch = benchmark(run)
        assert batch.elapsed_seconds < 0.5 * batch.serial_seconds

    def test_speedup_saturates_at_core_count(self):
        chip = make_tpu_chip(num_cores=4, precision="fp32", mxu_rows=16, mxu_cols=16)
        rng = np.random.default_rng(4)
        inputs = [rng.standard_normal((32, 32)) for _ in range(16)]
        batch = MultiInputScheduler(chip).fft2_batch(inputs)
        # 16 inputs on 4 cores: at most ~4x parallel speedup.
        assert batch.serial_seconds / batch.elapsed_seconds < 5.0


class TestTopologyAblation:
    """Ring vs 2-D torus reassembly for Algorithm 1's collectives."""

    def test_torus_cuts_reassembly_latency_at_128_cores(self):
        from repro.hw import Interconnect, InterconnectConfig

        payload = 1024 * 1024 * 16  # one complex 1024x1024 intermediate
        ring = Interconnect(InterconnectConfig(topology="ring"))
        torus = Interconnect(InterconnectConfig(topology="torus2d"))
        ring_time = ring.all_reduce_seconds(payload, 128)
        torus_time = torus.all_reduce_seconds(payload, 128)
        assert torus_time < ring_time
        # At 128 cores the hop-latency term dominates: expect >2x.
        assert ring_time / torus_time > 2.0

    def test_topology_choice_propagates_to_decomposition(self):
        from repro.core import DecomposedFourier
        from repro.hw import InterconnectConfig, MxuConfig, TpuChip, TpuChipConfig, TpuCoreConfig
        import numpy as np

        def chip_with(topology):
            return TpuChip(
                TpuChipConfig(
                    num_cores=16,
                    core=TpuCoreConfig(mxu=MxuConfig(rows=16, cols=16, precision="fp32")),
                    interconnect=InterconnectConfig(topology=topology),
                )
            )

        x = np.random.default_rng(0).standard_normal((64, 64))
        ring_chip = chip_with("ring")
        _, ring_report = DecomposedFourier(ring_chip).fft2(x)
        torus_chip = chip_with("torus2d")
        _, torus_report = DecomposedFourier(torus_chip).fft2(x)
        assert torus_report.communication_seconds < ring_report.communication_seconds
        assert torus_report.compute_seconds == pytest.approx(
            ring_report.compute_seconds
        )


class TestProgramFusionAblation:
    """Compiled one-dispatch programs vs eager per-op launches -- the
    quantitative form of 'a simple computation equivalent to one
    forward pass'."""

    def test_fused_solve_beats_eager_solve(self, benchmark):
        from repro.hw import compiled_seconds, eager_seconds, solve_graph
        from repro.hw.mxu import MxuConfig
        from repro.hw.tpu import TpuCoreConfig

        core = TpuCoreConfig(mxu=MxuConfig(rows=64, cols=64, precision="bf16"))
        graph = solve_graph(size=256, pairs=2)

        def run():
            fused = compiled_seconds(graph, core, 0.6e9, dispatch_latency_sec=26e-3)
            eager = eager_seconds(graph, core, 0.6e9, dispatch_latency_sec=26e-3)
            return fused, eager

        fused, eager = benchmark(run)
        assert fused < eager
        # ~25 ops: per-op dispatch alone costs ~0.6 s extra.
        assert eager - fused > 0.4

    def test_fusion_saving_scales_with_graph_size(self):
        from repro.hw import compiled_seconds, eager_seconds, solve_graph
        from repro.hw.mxu import MxuConfig
        from repro.hw.tpu import TpuCoreConfig

        core = TpuCoreConfig(mxu=MxuConfig(rows=32, cols=32, precision="bf16"))
        gaps = []
        for pairs in (1, 4):
            graph = solve_graph(size=64, pairs=pairs)
            gaps.append(
                eager_seconds(graph, core, 0.6e9, 26e-3)
                - compiled_seconds(graph, core, 0.6e9, 26e-3)
            )
        assert gaps[1] > 2.0 * gaps[0]


class TestLibraryFftThreat:
    """Threat-to-validity probe: the paper deploys its matmul-form
    algorithm on the CPU/GPU baselines.  Repricing those baselines with
    O(n log n) library FFTs shrinks the TPU's interpretation advantage
    substantially -- reported honestly in EXPERIMENTS.md."""

    def test_library_fft_is_much_faster_baseline(self):
        from repro.hw import CpuConfig, CpuDevice

        matmul_form = CpuDevice()
        library = CpuDevice(CpuConfig(use_library_fft=True))
        assert library.fft2_seconds(1024, 1024) < 0.05 * matmul_form.fft2_seconds(
            1024, 1024
        )

    def test_strong_baselines_flip_the_table2_result(self):
        """The decisive finding: against library-FFT baselines the
        deployed TPU path (per-feature host round trips) *loses* Table
        II outright -- its measured advantage is an artifact of both
        baselines running the matmul-form algorithm.  The compute-only
        TPU path (no host overheads) still wins, so the claim survives
        only for fused, on-device interpretation loops."""
        from repro.bench.workloads import (
            interpretation_seconds,
            vgg19_interpretation_workload,
        )
        from repro.hw import CpuConfig, CpuDevice

        workload = vgg19_interpretation_workload()
        tpu_deployed = interpretation_seconds(TpuBackend(make_tpu_chip()), workload, method="loop")
        strong_cpu = interpretation_seconds(
            CpuDevice(CpuConfig(use_library_fft=True)), workload, method="loop"
        )
        assert strong_cpu < tpu_deployed  # the deployed path loses

        tpu_fused = interpretation_seconds(
            TpuBackend(
                make_tpu_chip(
                    dispatch_latency_sec=0.0, host_bandwidth_bytes_per_sec=1e18
                )
            ),
            workload,
            method="loop",
        )
        assert tpu_fused < strong_cpu  # silicon still wins when fused


class TestEnergyFootprint:
    """The paper claims 'significant energy savings'.  Two accounting
    models bracket the truth: *reserved-fleet* (every reserved core
    burns TDP for the elapsed time -- pessimistic for a 128-core slice
    that idles through host round trips) and *active-compute* (silicon
    burns TDP only while computing).  The paper's claim holds under
    active-compute accounting; the reserved-fleet numbers are reported
    in EXPERIMENTS.md as the honest counterpoint."""

    def test_tpu_wins_under_active_compute_accounting(self):
        from repro.bench.workloads import (
            interpretation_seconds,
            vgg19_interpretation_workload,
        )
        from repro.hw import CpuDevice, GpuDevice

        workload = vgg19_interpretation_workload()
        cpu = CpuDevice()
        gpu = GpuDevice()
        # CPU/GPU are compute-bound here: elapsed ~ busy.
        cpu_energy = cpu.energy_joules(interpretation_seconds(cpu, workload, method="loop"))
        gpu_energy = gpu.energy_joules(interpretation_seconds(gpu, workload, method="loop"))
        # TPU active-compute seconds: the same workload on a chip with
        # host overheads zeroed out (what the silicon actually executes).
        tpu_active = TpuBackend(
            make_tpu_chip(
                dispatch_latency_sec=0.0, host_bandwidth_bytes_per_sec=1e18
            )
        )
        tpu_energy = tpu_active.energy_joules(
            interpretation_seconds(tpu_active, workload, method="loop")
        )
        assert tpu_energy < gpu_energy < cpu_energy

    def test_reserved_fleet_accounting_reverses_the_claim(self):
        """Honesty check: if all 128 reserved cores burn TDP for the
        whole elapsed time, the TPU does NOT save energy -- the claim
        depends on the accounting model."""
        from repro.bench.workloads import (
            interpretation_seconds,
            vgg19_interpretation_workload,
        )
        from repro.hw import GpuDevice

        workload = vgg19_interpretation_workload()
        gpu = GpuDevice()
        gpu_energy = gpu.energy_joules(interpretation_seconds(gpu, workload, method="loop"))
        tpu = TpuBackend(make_tpu_chip())
        tpu_energy = tpu.energy_joules(interpretation_seconds(tpu, workload, method="loop"))
        assert tpu_energy > gpu_energy
