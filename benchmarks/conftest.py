"""Shared configuration for the benchmark suite.

pytest-benchmark measures harness wall time (the cost of running the
simulator); the *scientific* outputs are the simulated seconds each
bench prints and asserts on.  Keep rounds low -- the workloads are
deterministic, so statistical repetition buys nothing.
"""

import pytest


@pytest.fixture
def quick_benchmark(benchmark):
    """A benchmark fixture pinned to a single warm-up-free round."""
    benchmark.pedantic_kwargs = {"rounds": 1, "iterations": 1}
    return benchmark
