"""Host wall-clock hot path: real-input rFFT + kernel-spectrum cache.

Every other benchmark in this directory reports *simulated* device
seconds from the cost model.  This one times the host itself: real
``time.perf_counter`` wall-clock for the numpy hot path that every
simulated backend ultimately runs.  Two configurations are compared:

* **real**    -- the shipped path: real-input convolutions route
  through half-spectrum ``rfft2``/``irfft2`` transforms and kernel
  spectra come from the process-level content-addressed cache;
* **complex** -- the pre-change path, kept reachable via
  ``set_real_convolution_path(False)`` plus
  ``set_kernel_spectrum_cache_enabled(False)``: full complex
  transforms everywhere, kernel re-transformed per call.

Three workloads cover the stack: a single-pair ``score_plan`` (one
mask plan, one kernel), a 100-pair :class:`FleetExecutor` fleet on
64x64 planes (blocks granularity, so the chunked batched convolution
dominates), and a serve replay driving Poisson traffic through
:class:`ExplanationService` cold then warm.

Contracts asserted (pytest, and by the ``--quick`` CI smoke):

* the real path's fleet wall-clock beats the complex path -- by the
  1.5x acceptance floor in the full run, strictly (>1x) in ``--quick``
  (a loaded CI machine cannot flake the direction);
* a warm kernel-spectrum cache records **zero** kernel re-transforms
  when the same fleet runs again (repeated-shape waves hit the cache);
* dense, streamed and looped scoring stay **bit-identical** on the
  real path -- dispatch parity is unchanged by how the answer is
  computed.

The full run writes ``BENCH_host.json`` next to the repo root: the
first entry of the host perf trajectory, uploaded by CI.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_host.py [--quick] [--json PATH]
"""

import argparse
import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro.bench.workloads import planted_interpretation_pairs
from repro.core.fleet import FleetExecutor
from repro.core.masking import MaskPlan, score_plan
from repro.fft import (
    clear_kernel_spectrum_cache,
    kernel_spectrum_cache_info,
    set_kernel_spectrum_cache_enabled,
)
from repro.fft.convolution import set_real_convolution_path
from repro.hw.cpu import CpuDevice

SHAPE = (64, 64)  # plane size: big enough that transforms dominate
BLOCK = (4, 4)  # 256 masks per pair: the batched convolution dominates
FLEET_PAIRS = 100  # the acceptance workload
QUICK_PAIRS = 24  # CI smoke: same shape, smaller fleet
CONTRACT_PAIRS = 12  # pytest contracts: direction only, keep them snappy
SERVE_REQUESTS = 48
REPEATS = 2  # best-of-N wall-clock (min filters scheduler noise)
SPEEDUP_FLOOR = 1.5  # full-run acceptance: real >= 1.5x complex on the fleet


# ----------------------------------------------------------------------
# Workload + configuration helpers
# ----------------------------------------------------------------------


def fleet_pairs(count=FLEET_PAIRS, shape=SHAPE, seed=0):
    return planted_interpretation_pairs(count, shape=shape, seed=seed)


def fleet_executor(device=None):
    return FleetExecutor(
        device or CpuDevice(), granularity="blocks", block_shape=BLOCK, eps=1e-8
    )


def single_pair(shape=SHAPE, seed=1):
    (x, y), = planted_interpretation_pairs(1, shape=shape, seed=seed)
    rng = np.random.default_rng(seed + 1)
    kernel = rng.standard_normal(shape)
    return x, kernel, y


def serve_trace(count=SERVE_REQUESTS):
    from repro.serve import poisson_requests

    return poisson_requests(count, rate=400.0, seed=3, shape=(16, 16))


def serve_service():
    from repro.core.backend import TpuBackend, make_tpu_chip
    from repro.serve import ExplanationService

    backend = TpuBackend(
        make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=8, mxu_cols=8)
    )
    return ExplanationService(
        backend, granularity="blocks", block_shape=(4, 4), eps=1e-8,
        max_wait_seconds=0.05, max_batch_pairs=32,
    )


@contextmanager
def complex_path():
    """The pre-change configuration: full complex FFTs, no spectrum cache."""
    previous_path = set_real_convolution_path(False)
    previous_cache = set_kernel_spectrum_cache_enabled(False)
    try:
        yield
    finally:
        set_kernel_spectrum_cache_enabled(previous_cache)
        set_real_convolution_path(previous_path)


def _best_of(fn, repeats=REPEATS):
    """Min-of-N wall-clock; the first (untimed) call warms plan caches."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_workloads(pairs, serve=True, repeats=REPEATS):
    """Wall-clock each workload under the shipped and pre-change paths."""
    x, kernel, y = single_pair()
    plan = MaskPlan.blocks(SHAPE, BLOCK)
    timings = {}

    def run_single():
        score_plan(x, kernel, y, plan)

    def run_fleet():
        fleet_executor().run(pairs)

    def run_serve():
        serve_service().process(serve_trace())

    workloads = [("single_pair", run_single), ("fleet", run_fleet)]
    if serve:
        workloads.append(("serve_replay", run_serve))
    for name, fn in workloads:
        clear_kernel_spectrum_cache()
        real = _best_of(fn, repeats)
        with complex_path():
            legacy = _best_of(fn, repeats)
        timings[name] = {
            "real_seconds": real,
            "complex_seconds": legacy,
            "speedup": legacy / real,
        }
    return timings


# ----------------------------------------------------------------------
# Contracts (collected by pytest; CI runs this file with the benches)
# ----------------------------------------------------------------------


def test_fleet_real_path_beats_complex_path_wall_clock():
    """The tentpole direction contract: on the fleet workload the
    shipped real path must be faster than the pre-change complex path
    in actual host time.  The 1.5x acceptance floor is asserted by the
    full (non-quick) run that generates BENCH_host.json; here only the
    direction is asserted so a loaded CI box cannot flake it."""
    pairs = fleet_pairs(CONTRACT_PAIRS)
    clear_kernel_spectrum_cache()
    real = _best_of(lambda: fleet_executor().run(pairs), repeats=1)
    with complex_path():
        legacy = _best_of(lambda: fleet_executor().run(pairs), repeats=1)
    assert real < legacy


def test_warm_cache_records_zero_kernel_retransforms():
    """Repeated-shape waves: re-running the same fleet against a warm
    kernel-spectrum cache must not transform a single kernel again."""
    pairs = fleet_pairs(CONTRACT_PAIRS)
    clear_kernel_spectrum_cache()
    fleet_executor().run(pairs)
    warm_start = kernel_spectrum_cache_info()["kernel_transforms"]
    run = fleet_executor().run(pairs)
    warm_delta = kernel_spectrum_cache_info()["kernel_transforms"] - warm_start
    assert warm_delta == 0
    assert len(run.results) == CONTRACT_PAIRS


def test_real_path_scores_match_complex_path():
    """Switching the host algorithm must not change the answers beyond
    float rounding: same fleet, both paths, scores element-close."""
    pairs = fleet_pairs(CONTRACT_PAIRS)
    clear_kernel_spectrum_cache()
    real_run = fleet_executor().run(pairs)
    with complex_path():
        legacy_run = fleet_executor().run(pairs)
    for ours, theirs in zip(real_run.results, legacy_run.results):
        np.testing.assert_allclose(ours.scores, theirs.scores, atol=1e-9)
        np.testing.assert_array_equal(ours.kernel, theirs.kernel)


def test_dense_streamed_loop_parity_on_real_path():
    """Dispatch parity: dense, streamed (any chunk size) and looped
    scoring produce bit-identical scores on the shipped real path."""
    x, kernel, y = single_pair(shape=(16, 16), seed=9)
    plan = MaskPlan.blocks((16, 16), (4, 4))
    clear_kernel_spectrum_cache()
    dense = score_plan(x, kernel, y, plan, method="batched")
    looped = score_plan(x, kernel, y, plan, method="loop")
    np.testing.assert_array_equal(dense, looped)
    for chunk_rows in (1, 3, 7):
        streamed = score_plan(
            x, kernel, y, plan, method="batched", chunk_rows=chunk_rows
        )
        np.testing.assert_array_equal(streamed, dense)


# ----------------------------------------------------------------------
# Report + CLI smoke mode
# ----------------------------------------------------------------------


def _report(timings, cache_info, warm_delta) -> str:
    lines = [
        "HOST WALL-CLOCK HOT PATH (time.perf_counter seconds; "
        "real = shipped rFFT + spectrum cache, complex = pre-change path)",
        f"{'workload':>12s} {'real(s)':>9s} {'complex(s)':>11s} {'speedup':>8s}",
    ]
    for name, row in timings.items():
        lines.append(
            f"{name:>12s} {row['real_seconds']:9.4f} "
            f"{row['complex_seconds']:11.4f} {row['speedup']:7.2f}x"
        )
    lines.append(
        f"kernel-spectrum cache: {cache_info['entries']} entries, "
        f"{cache_info['hits']} hits / {cache_info['misses']} misses, "
        f"{cache_info['kernel_transforms']} transforms, "
        f"{warm_delta} re-transforms on the warm repeat"
    )
    return "\n".join(lines)


def _measure(quick: bool):
    """Run the full measurement matrix; returns (timings, cache facts)."""
    count = QUICK_PAIRS if quick else FLEET_PAIRS
    repeats = 1 if quick else REPEATS
    pairs = fleet_pairs(count)
    timings = _time_workloads(pairs, serve=not quick, repeats=repeats)
    timings["fleet"]["pairs"] = count

    # Warm-cache contract: prime the cache with one fleet pass (later
    # workloads cleared it), then count kernel transforms a repeated
    # identical fleet adds -- repeated-shape waves must add none.
    fleet_executor().run(pairs)
    warm_start = kernel_spectrum_cache_info()["kernel_transforms"]
    fleet_executor().run(pairs)
    warm_delta = (
        kernel_spectrum_cache_info()["kernel_transforms"] - warm_start
    )
    return timings, kernel_spectrum_cache_info(), warm_delta


def _smoke(quick: bool, json_path: Path | None) -> int:
    floor = 1.0 if quick else SPEEDUP_FLOOR
    timings, cache_info, warm_delta = _measure(quick)
    print(_report(timings, cache_info, warm_delta))

    failures = 0
    fleet_speedup = timings["fleet"]["speedup"]
    if not fleet_speedup > floor:
        print(
            f"FAIL: fleet real-path wall-clock speedup {fleet_speedup:.2f}x "
            f"must clear {floor}x over the pre-change complex path",
            file=sys.stderr,
        )
        failures += 1
    if warm_delta != 0:
        print(
            f"FAIL: warm kernel-spectrum cache re-transformed {warm_delta} "
            "kernels on a repeated-shape fleet (expected 0)",
            file=sys.stderr,
        )
        failures += 1
    try:
        test_dense_streamed_loop_parity_on_real_path()
    except AssertionError:
        print(
            "FAIL: dense/streamed/loop scores diverged on the real path",
            file=sys.stderr,
        )
        failures += 1

    if json_path is not None and not failures:
        payload = {
            "benchmark": "bench_host",
            "mode": "quick" if quick else "full",
            "clock": "time.perf_counter",
            "plane_shape": list(SHAPE),
            "workloads": timings,
            "kernel_spectrum_cache": cache_info,
            "warm_repeat_kernel_retransforms": warm_delta,
            "contracts": {
                "fleet_speedup_floor": floor,
                "fleet_speedup_measured": fleet_speedup,
                "warm_retransforms_expected": 0,
                "dispatch_parity": "dense == streamed == loop (bit-identical)",
            },
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {json_path}")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller fleet, direction-only speedup floor, "
        "no JSON artifact unless --json is given",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="where to write the BENCH_host.json artifact "
        "(default: repo-root BENCH_host.json in full mode, skipped in --quick)",
    )
    args = parser.parse_args(argv)
    json_path = args.json
    if json_path is None and not args.quick:
        json_path = Path(__file__).resolve().parent.parent / "BENCH_host.json"
    return 1 if _smoke(args.quick, json_path) else 0


if __name__ == "__main__":
    raise SystemExit(main())
