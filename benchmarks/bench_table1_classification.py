"""Table I: accuracy and classification time for VGG19 and ResNet50.

Regenerates both rows of the paper's Table I: simulated training and
testing time per 10 epochs on CPU / GPU / TPU, plus real accuracy from
training the CI-scale model variants.  The shape contract asserted here
(per DESIGN.md):

* ordering CPU > GPU > TPU on both train and test time;
* TPU-vs-CPU speedup in the ~40-70x band (paper: 65x / 44.5x);
* TPU-vs-GPU speedup in the ~15-30x band (paper: 25.7x / 23.9x);
* trained models genuinely classify (accuracy well above chance).
"""

import pytest

from repro.bench.harness import format_table1, run_table1


@pytest.fixture(scope="module")
def table1_times():
    """Simulated-time rows only (accuracy exercised in the slow bench)."""
    return run_table1(with_accuracy=False)


def test_print_table1_times(table1_times, capsys):
    with capsys.disabled():
        print()
        print(format_table1(table1_times))


@pytest.mark.parametrize("row_index, bench", [(0, "VGG19"), (1, "ResNet50")])
def test_device_ordering(table1_times, row_index, bench):
    row = table1_times.rows[row_index]
    assert row.bench == bench
    assert row.cpu_train > row.gpu_train > row.tpu_train
    assert row.cpu_test > row.gpu_test > row.tpu_test


@pytest.mark.parametrize("row_index", [0, 1])
def test_speedup_bands(table1_times, row_index):
    row = table1_times.rows[row_index]
    assert 40.0 < row.speedup_vs_cpu < 70.0
    assert 15.0 < row.speedup_vs_gpu < 30.0


def test_vgg_row_near_paper_ratios(table1_times):
    """Paper: VGG19 65x vs CPU, 25.7x vs GPU."""
    row = table1_times.rows[0]
    assert row.speedup_vs_cpu == pytest.approx(65.0, rel=0.25)
    assert row.speedup_vs_gpu == pytest.approx(25.7, rel=0.25)


def test_resnet_row_near_paper_cpu_ratio(table1_times):
    """Paper: ResNet50 44.5x vs CPU."""
    row = table1_times.rows[1]
    assert row.speedup_vs_cpu == pytest.approx(44.5, rel=0.30)


def test_benchmark_table1_simulation(benchmark):
    """Wall-time of regenerating the simulated-time half of Table I."""
    result = benchmark(lambda: run_table1(with_accuracy=False))
    assert len(result.rows) == 2


@pytest.mark.slow
def test_table1_accuracy_columns(benchmark):
    """Full Table I including real training of the scaled models.

    The paper's accuracy columns are 78-96%; the CI-scale variants on
    the synthetic datasets must land well above chance and the int8
    (TPU) evaluation must stay within a few points of float.
    """
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    vgg, resnet = result.rows
    assert vgg.cpu_accuracy > 75.0
    assert resnet.cpu_accuracy > 75.0
    assert abs(vgg.cpu_accuracy - vgg.tpu_accuracy) < 10.0
    assert abs(resnet.cpu_accuracy - resnet.tpu_accuracy) < 10.0
    print()
    print(format_table1(result))
