"""Observability benchmark: traced runs, checked against their ledgers.

The tracing layer's acceptance harness, runnable standalone and
collectable by pytest.  Two traced workloads:

* **fleet** -- the 100-pair 8-chip strong-scaling run of
  ``bench_fleet_interpretation --scaling`` (32x32 planes, per-element
  masks, data placement), traced end to end;
* **serve** -- a bursty online-serving sweep (closed bursts through
  the autopilot-steered :class:`repro.serve.ExplanationService`),
  traced from arrival to completion.

Contracts asserted (pytest, and by ``--quick``):

* **reconciliation** -- every traced pod commit's span tree reproduces
  the pod ledger's elapsed decomposition *exactly* (max-over-chips
  body, launch floor, collective rows, overlap credits), ``==`` on
  floats (:func:`repro.obs.reconcile.reconcile_pod_trace`);
* **schema** -- the exported document is valid Chrome trace-event JSON
  (:func:`repro.obs.export.validate_chrome_trace` returns no
  problems), loadable in Perfetto / ``chrome://tracing``;
* **zero overhead off** -- the identical run with tracing disabled
  produces bit-identical scores and a bit-identical ``DeviceStats``
  ledger (and, for serve, an identical ``ServiceReport.signature()``).

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_trace.py [--quick] [--json PATH]

Writes ``BENCH_trace.json`` (``BENCH_trace_quick.json`` under
``--quick``) plus the Perfetto-loadable span timelines
``BENCH_fleet.trace.json`` and ``BENCH_serve.trace.json``.
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.pipeline import ExplanationPipeline
from repro.bench.workloads import planted_interpretation_pairs
from repro.fft.fft import clear_fft_plan_cache, fft_plan_cache_info
from repro.hw.pod import TpuPod
from repro.obs import (
    format_trace_ascii,
    format_wave_timeline,
    to_chrome_trace,
    tracer,
    validate_chrome_trace,
)
from repro.obs.reconcile import reconcile_pod_trace
from repro.serve import (
    AdmissionController,
    BatchController,
    ExplanationService,
    bursty_requests,
)

FLEET_PAIRS = 100
FLEET_SHAPE = (32, 32)
FLEET_BLOCK = (1, 1)
FLEET_CHIPS = 8

QUICK_PAIRS = 12
QUICK_SHAPE = (16, 16)
QUICK_BLOCK = (4, 4)
QUICK_CHIPS = 2

SERVE_SHAPE = (16, 16)
SERVE_BLOCK = (4, 4)
SERVE_COUNT = 80
SERVE_QUICK_COUNT = 36

DEFAULT_JSON = Path("BENCH_trace.json")
QUICK_JSON = Path("BENCH_trace_quick.json")
FLEET_TRACE = Path("BENCH_fleet.trace.json")
SERVE_TRACE = Path("BENCH_serve.trace.json")


def _stats_tuple(stats):
    """A ``DeviceStats`` ledger as one comparable value (== is bitwise)."""
    return (
        stats.seconds,
        stats.macs,
        stats.bytes_moved,
        dict(stats.op_counts),
        dict(stats.op_seconds),
    )


# ----------------------------------------------------------------------
# Traced workloads
# ----------------------------------------------------------------------


def _fleet_run(pairs, num_chips, block_shape, traced):
    """One scaling fleet run; returns ``(run, pod-or-None)``."""
    pipeline = ExplanationPipeline(
        TpuBackend(make_tpu_chip()),
        granularity="blocks",
        block_shape=block_shape,
        eps=1e-8,
        num_chips=num_chips if num_chips > 1 else None,
        placement="data",
    )
    if traced:
        tracer.clear()
        tracer.enable()
    else:
        tracer.disable()
        tracer.clear()
    run = pipeline.run(pairs)
    tracer.disable()
    pod = pipeline.device if isinstance(pipeline.device, TpuPod) else None
    return run, pod


def _serve_run(count, traced, seed=3):
    """One bursty autopilot-serving run; returns ``(report, service)``."""
    # Bursts wider than the controller's base cap (16), so full
    # dispatches fire the autopilot and decision events land in the
    # trace's controller lane.
    trace = bursty_requests(
        count=count, burst_size=20, burst_gap=0.2, seed=seed,
        shape=SERVE_SHAPE, repeat_fraction=0.3,
    )
    service = ExplanationService(
        TpuBackend(make_tpu_chip()),
        granularity="blocks",
        block_shape=SERVE_BLOCK,
        max_wait_seconds=0.05,
        max_batch_pairs=32,
        admission=AdmissionController(max_queue_depth=64),
        controller=BatchController(target_p95_seconds=0.05),
        num_chips=QUICK_CHIPS,
        metrics_name=None,
    )
    if traced:
        tracer.clear()
        tracer.enable()
    else:
        tracer.disable()
        tracer.clear()
    report = service.process(trace)
    tracer.disable()
    return report, service


# ----------------------------------------------------------------------
# Contracts (pytest-collectable; --quick runs the same checks)
# ----------------------------------------------------------------------


def test_fleet_trace_reconciles_and_validates():
    """The quick fleet's span tree must equal its ledger, exactly."""
    pairs = planted_interpretation_pairs(QUICK_PAIRS, shape=QUICK_SHAPE, seed=0)
    run, pod = _fleet_run(pairs, QUICK_CHIPS, QUICK_BLOCK, traced=True)
    assert pod is not None
    report = reconcile_pod_trace(pod, tracer, stats=run.stats)
    assert report.ok, report.failures[:5]
    assert report.num_traced_commits == report.num_commits > 0
    assert validate_chrome_trace(to_chrome_trace(tracer)) == []
    tracer.clear()


def test_tracing_off_is_bit_identical():
    """Disabling the tracer must not move a bit of scores or ledger."""
    pairs = planted_interpretation_pairs(QUICK_PAIRS, shape=QUICK_SHAPE, seed=1)
    on, _ = _fleet_run(pairs, QUICK_CHIPS, QUICK_BLOCK, traced=True)
    tracer.clear()
    off, _ = _fleet_run(pairs, QUICK_CHIPS, QUICK_BLOCK, traced=False)
    assert _stats_tuple(on.stats) == _stats_tuple(off.stats)
    for a, b in zip(on.explanations, off.explanations):
        assert np.array_equal(a.scores, b.scores)
        assert a.residual == b.residual


def test_serve_trace_validates_and_signature_is_stable():
    """A traced serve run exports valid JSON and an unchanged ledger."""
    on, service = _serve_run(SERVE_QUICK_COUNT, traced=True)
    doc = to_chrome_trace(tracer)
    assert validate_chrome_trace(doc) == []
    assert any(e.get("cat") == "serve" for e in doc["traceEvents"])
    assert isinstance(service.device, TpuPod)
    report = reconcile_pod_trace(service.device, tracer, stats=on.stats)
    assert report.ok, report.failures[:5]
    tracer.clear()
    off, _ = _serve_run(SERVE_QUICK_COUNT, traced=False)
    assert on.signature() == off.signature()


# ----------------------------------------------------------------------
# Benchmark sections
# ----------------------------------------------------------------------


def _fleet_section(quick, trace_path):
    pairs_n = QUICK_PAIRS if quick else FLEET_PAIRS
    shape = QUICK_SHAPE if quick else FLEET_SHAPE
    block = QUICK_BLOCK if quick else FLEET_BLOCK
    chips = QUICK_CHIPS if quick else FLEET_CHIPS
    pairs = planted_interpretation_pairs(pairs_n, shape=shape, seed=0)

    run, pod = _fleet_run(pairs, chips, block, traced=True)
    doc = to_chrome_trace(tracer)
    problems = validate_chrome_trace(doc)
    recon = reconcile_pod_trace(pod, tracer, stats=run.stats)
    num_events = len(doc["traceEvents"])
    ascii_lanes = format_trace_ascii(tracer)
    timeline = format_wave_timeline(pod.collective_log)
    tracer.clear()

    off, _ = _fleet_run(pairs, chips, block, traced=False)
    identical = _stats_tuple(run.stats) == _stats_tuple(off.stats) and all(
        np.array_equal(a.scores, b.scores)
        for a, b in zip(run.explanations, off.explanations)
    )

    trace_path.write_text(json.dumps(doc) + "\n")
    print(
        f"FLEET TRACE ({pairs_n} pairs, {chips} chips, data placement): "
        f"{num_events} events, {recon.checks} reconciliation checks, "
        f"{len(recon.failures)} failures, "
        f"{len(problems)} schema problems, off-identical={identical}"
    )
    print(timeline)
    print(ascii_lanes)
    print(f"wrote {trace_path}")

    failures = []
    if not recon.ok:
        failures.append(
            f"fleet trace does not reconcile: {recon.failures[:3]}"
        )
    if problems:
        failures.append(f"fleet trace schema problems: {problems[:3]}")
    if not identical:
        failures.append("tracing changed the fleet's scores or ledger")
    return {
        "pairs": pairs_n,
        "chips": chips,
        "plane_shape": list(shape),
        "simulated_seconds": run.simulated_seconds,
        "num_events": num_events,
        "reconciliation_checks": recon.checks,
        "reconciliation_failures": len(recon.failures),
        "traced_commits": recon.num_traced_commits,
        "waves": recon.num_waves,
        "schema_problems": len(problems),
        "tracing_off_bit_identical": identical,
        "trace_artifact": str(trace_path),
    }, failures


def _serve_section(quick, trace_path):
    count = SERVE_QUICK_COUNT if quick else SERVE_COUNT
    on, service = _serve_run(count, traced=True)
    doc = to_chrome_trace(tracer)
    problems = validate_chrome_trace(doc)
    recon = reconcile_pod_trace(service.device, tracer, stats=on.stats)
    num_events = len(doc["traceEvents"])
    serve_events = sum(1 for e in doc["traceEvents"] if e.get("cat") == "serve")
    decisions = len(service.controller.decision_log)
    tracer.clear()

    off, _ = _serve_run(count, traced=False)
    identical = on.signature() == off.signature()

    trace_path.write_text(json.dumps(doc) + "\n")
    print(
        f"SERVE TRACE ({count} bursty requests, autopilot): "
        f"{num_events} events ({serve_events} serve-lane), "
        f"{decisions} controller decisions, "
        f"{recon.checks} reconciliation checks, "
        f"{len(recon.failures)} failures, "
        f"{len(problems)} schema problems, off-identical={identical}"
    )
    print(f"wrote {trace_path}")

    failures = []
    if not recon.ok:
        failures.append(
            f"serve trace does not reconcile: {recon.failures[:3]}"
        )
    if problems:
        failures.append(f"serve trace schema problems: {problems[:3]}")
    if not identical:
        failures.append("tracing changed the serve ledger signature")
    return {
        "requests": count,
        "completed": on.completed_count,
        "p95_seconds": on.p95,
        "num_events": num_events,
        "serve_events": serve_events,
        "controller_decisions": decisions,
        "reconciliation_checks": recon.checks,
        "reconciliation_failures": len(recon.failures),
        "schema_problems": len(problems),
        "tracing_off_bit_identical": identical,
        "trace_artifact": str(trace_path),
    }, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small fleet and serve trace, same contracts",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="artifact path (default BENCH_trace.json, or the _quick "
        "variant under --quick)",
    )
    args = parser.parse_args(argv)

    clear_fft_plan_cache()
    fleet_entry, fleet_failures = _fleet_section(args.quick, FLEET_TRACE)
    print()
    serve_entry, serve_failures = _serve_section(args.quick, SERVE_TRACE)
    failures = fleet_failures + serve_failures

    plan_info = fft_plan_cache_info()
    payload = {
        "benchmark": "bench_trace",
        "mode": "quick" if args.quick else "full",
        "clock": "simulated",
        "fleet": fleet_entry,
        "serve": serve_entry,
        "fft_plan_caches": {
            k: v for k, v in sorted(plan_info.items())
            if k.endswith(("_hits", "_misses"))
        },
        "contracts": {
            "reconciliation": "per-wave span trees == pod ledger elapsed "
            "decomposition, exact float equality",
            "schema": "chrome trace-event JSON with zero validator problems",
            "zero_overhead_off": "tracing disabled is bit-identical in "
            "scores, DeviceStats and ServiceReport.signature()",
            "all_hold": not failures,
        },
    }
    json_path = args.json or (QUICK_JSON if args.quick else DEFAULT_JSON)
    json_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {json_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
