"""Fleet-scale interpretation: wave-fused vs per-pair execution.

Reports Table II-style numbers at fleet scale (1 / 10 / 100 pairs) for
the paper's two interpretation workloads, in three execution modes:

* ``loop``  -- the paper's measured per-feature execution (Table II;
  unchanged by the fleet refactor, asserted below);
* ``pair``  -- the PR-1 batched engine, one program per pair;
* ``wave``  -- the fleet executor, one batched program per scheduler
  wave (one dispatch per wave on the TPU).

Shape contracts asserted (also run by CI via the ``--quick`` smoke
mode): wave-fused TPU dispatch count strictly below the per-pair
count, wave simulated seconds below pair seconds on every backend, the
wave gain growing with fleet size on the TPU, bit-identical scores
across fusion modes, and the wave cost model agreeing with the
executed pipeline.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_fleet_interpretation.py [--quick]
"""

import argparse
import sys

import numpy as np
import pytest

from repro.bench.workloads import (
    InterpretationWorkload,
    fleet_interpretation_seconds,
    interpretation_seconds,
    resnet50_interpretation_workload,
    vgg19_interpretation_workload,
)
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.pipeline import ExplanationPipeline
from repro.fft import fft_circular_convolve2d
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice

FLEET_SIZES = (1, 10, 100)
SHAPE = (16, 16)
BLOCK = (4, 4)


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def planted_pairs(count, shape=SHAPE, seed=0):
    rng = np.random.default_rng(seed)
    pairs = []
    for _ in range(count):
        x = rng.standard_normal(shape)
        x[0, 0] += 5.0 * np.prod(shape) ** 0.5
        kernel = rng.standard_normal(shape)
        pairs.append((x, fft_circular_convolve2d(x, kernel)))
    return pairs


def _run(fusion, pairs, device=None):
    pipeline = ExplanationPipeline(
        device or small_backend(), granularity="blocks", block_shape=BLOCK,
        eps=1e-8, fusion=fusion,
    )
    return pipeline.run(pairs)


# ----------------------------------------------------------------------
# Executed-pipeline contracts
# ----------------------------------------------------------------------


def test_wave_dispatch_count_below_pair_dispatch_count():
    """The acceptance contract: a fused fleet costs one dispatch per
    wave where per-pair execution costs one program (plus one residual
    round trip) per pair."""
    pairs = planted_pairs(10)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    assert wave.stats.op_counts["dispatch"] == 1
    assert pair.stats.op_counts["dispatch"] == 10
    assert wave.stats.op_counts["dispatch"] < pair.stats.op_counts["dispatch"]
    assert "conv_round_trip" not in wave.stats.op_counts
    assert wave.simulated_seconds < pair.simulated_seconds


def test_scores_bit_identical_across_fusion():
    pairs = planted_pairs(6, seed=1)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    for a, b in zip(pair.explanations, wave.explanations):
        np.testing.assert_array_equal(a.scores, b.scores)
        np.testing.assert_array_equal(a.kernel, b.kernel)
        assert a.residual == b.residual


@pytest.mark.parametrize(
    "device_factory",
    [CpuDevice, GpuDevice, small_backend],
    ids=["cpu", "gpu", "tpu"],
)
def test_wave_cost_model_matches_executed_pipeline(device_factory):
    """fleet_interpretation_seconds(fusion="wave") mirrors the executed
    wave pipeline the way interpretation_seconds mirrors pair mode."""
    pairs = planted_pairs(3, seed=2)
    executed = _run("wave", pairs, device=device_factory()).simulated_seconds
    workload = InterpretationWorkload(
        name="mini", plane=SHAPE, num_features=16, pairs=3
    )
    modeled = fleet_interpretation_seconds(
        device_factory(), workload, fusion="wave"
    )
    assert modeled == pytest.approx(executed, rel=0.05)


def test_loop_mode_numbers_unchanged_by_fleet_refactor():
    """Table II regenerates from the same per-pair loop arithmetic."""
    workload = vgg19_interpretation_workload()
    for device_factory in (CpuDevice, GpuDevice, lambda: TpuBackend(make_tpu_chip())):
        assert fleet_interpretation_seconds(
            device_factory(), workload, method="loop"
        ) == interpretation_seconds(device_factory(), workload, method="loop")


def test_tpu_wave_gain_grows_with_fleet_size():
    def gain(n):
        device = TpuBackend(make_tpu_chip())
        workload = vgg19_interpretation_workload(pairs=n)
        pair = fleet_interpretation_seconds(device, workload, fusion="pair")
        wave = fleet_interpretation_seconds(device, workload, fusion="wave")
        return pair / wave

    gains = [gain(n) for n in FLEET_SIZES]
    assert gains == sorted(gains)
    assert gains[-1] > gains[0]


# ----------------------------------------------------------------------
# Report + CLI smoke mode
# ----------------------------------------------------------------------


def _report(fleet_sizes=FLEET_SIZES) -> str:
    lines = [
        "FLEET-SCALE INTERPRETATION (simulated seconds per fleet)",
        f"{'workload':10s} {'pairs':>5s} {'device':6s} "
        f"{'loop':>12s} {'pair':>12s} {'wave':>12s} {'wave gain':>9s}",
    ]
    for make_workload in (vgg19_interpretation_workload, resnet50_interpretation_workload):
        for pairs in fleet_sizes:
            workload = make_workload(pairs=pairs)
            for name, factory in [
                ("CPU", CpuDevice),
                ("GPU", GpuDevice),
                ("TPU", lambda: TpuBackend(make_tpu_chip())),
            ]:
                loop = fleet_interpretation_seconds(
                    factory(), workload, method="loop"
                )
                pair = fleet_interpretation_seconds(factory(), workload, fusion="pair")
                wave = fleet_interpretation_seconds(factory(), workload, fusion="wave")
                lines.append(
                    f"{workload.name:10s} {pairs:5d} {name:6s} "
                    f"{loop:12.4f} {pair:12.4f} {wave:12.4f} {pair / wave:8.2f}x"
                )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small fleet, executed-dispatch assertion only",
    )
    args = parser.parse_args(argv)

    fleet = 10 if args.quick else 100
    pairs = planted_pairs(fleet)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    wave_dispatches = wave.stats.op_counts["dispatch"]
    pair_dispatches = pair.stats.op_counts["dispatch"]
    print(
        f"executed {fleet}-pair fleet on {small_backend().name}: "
        f"dispatches pair={pair_dispatches} wave={wave_dispatches}, "
        f"seconds pair={pair.simulated_seconds:.4f} "
        f"wave={wave.simulated_seconds:.4f} "
        f"({pair.simulated_seconds / wave.simulated_seconds:.1f}x)"
    )
    if wave_dispatches >= pair_dispatches:
        print(
            "FAIL: wave-fused dispatch count must be below per-pair count",
            file=sys.stderr,
        )
        return 1
    for a, b in zip(pair.explanations, wave.explanations):
        if not np.array_equal(a.scores, b.scores):
            print("FAIL: wave scores diverge from per-pair scores", file=sys.stderr)
            return 1
    print()
    print(_report(fleet_sizes=(1, 10) if args.quick else FLEET_SIZES))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
