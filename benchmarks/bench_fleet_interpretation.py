"""Fleet-scale interpretation: wave-fused vs per-pair execution.

Reports Table II-style numbers at fleet scale (1 / 10 / 100 pairs) for
the paper's two interpretation workloads, in four execution modes:

* ``loop``  -- the paper's measured per-feature execution (Table II;
  unchanged by the fleet refactor, asserted below);
* ``pair``  -- the PR-1 batched engine, one program per pair;
* ``wave``  -- the fleet executor, one batched program per scheduler
  wave (one dispatch per wave on the TPU), executed serially;
* ``wave-pip`` -- the same waves double-buffered (``pipelined=True``):
  wave ``i+1``'s dispatch + infeed overlaps wave ``i``'s compute, the
  hidden host-link time reported as the *overlap* column.  The fleet
  is split into 10-pair waves for these two columns so there is
  cross-wave overlap to measure (a single wave has nothing to hide).

A second report covers the **precision axis**
(``ExplanationPipeline(precision=...)``): for each fleet size it shows
the modeled wave-pipelined seconds per precision, the simulated speedup
over fp64 waves, and the *executed* quantization error of batched
scores -- which is asserted equal to looped quantized scores bit for
bit (batching adds no error) and within the documented
``quantized_conv_error_bound``.

Shape contracts asserted (also run by CI via the ``--quick`` smoke
mode, plus ``--pipelined`` for the overlap contract): wave-fused TPU
dispatch count strictly below the per-pair count, wave simulated
seconds below pair seconds on every backend, the wave gain growing
with fleet size on the TPU, bit-identical scores across fusion *and*
pipelining modes, pipelined elapsed strictly below serial at 100 pairs
with dispatch counts unchanged, the wave cost model agreeing with the
executed pipeline, and -- in the quantized smoke, part of ``--quick``
-- int8 batched error within the documented bound with dispatch counts
matching the exact run.

A third mode, ``--scaling``, exercises the **pod axis**
(``ExplanationPipeline(num_chips=K)``): the same fleet sharded across
K simulated chips, each with its own asynchronous host link, so a wave
costs ``max(launch round trip, max per-chip infeed + compute +
outfeed)`` plus the remaining true collectives.  It emits
strong-scaling (fixed 100-pair fleet, 1/2/4/8 chips) and weak-scaling
(25 pairs per chip) curves with per-chip infeed/outfeed and
launch-exposure columns itemized from the pod's collective log, plus
overlapped-chunk and wave-placement rows, asserts pod scores
bit-identical to the single-chip run at every chip count, placement
and precision (fp64/bf16/int8), requires the strong-scaling simulated
speedup to clear ``2.5x`` at 4 chips and ``5.0x`` at 8, the
overlapped chunk placement to clear ``2.2x`` at 4 chips, and refuses
to regress any chip count below the committed
``BENCH_fleet_scaling.json`` before overwriting it.  ``--scaling
--quick`` is the CI variant: the same 100-pair fleet at 1/8 chips plus
the 4-chip chunk row, asserting both strictly improve the
pre-sharded-host-link committed baselines (3.44x and 1.78x), with a
``BENCH_fleet_scaling_quick.json`` artifact.

Runnable standalone::

    PYTHONPATH=src python benchmarks/bench_fleet_interpretation.py \
        [--quick] [--pipelined] [--scaling] [--json PATH]
"""

import argparse
import json
import sys

import numpy as np
import pytest

from repro.bench.workloads import (
    InterpretationWorkload,
    fleet_interpretation_seconds,
    interpretation_seconds,
    planted_interpretation_pairs,
    resnet50_interpretation_workload,
    vgg19_interpretation_workload,
)
from repro.core.backend import TpuBackend, make_tpu_chip
from repro.core.pipeline import ExplanationPipeline
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.hw.pod import TpuPod

FLEET_SIZES = (1, 10, 100)
SHAPE = (16, 16)
BLOCK = (4, 4)
PAIRS_PER_WAVE = 10  # wave width for the pipelined columns/contracts
PRECISIONS = ("fp64", "bf16", "int8")  # the quantized-batch ladder

# --- pod scaling mode -------------------------------------------------
# Per-element masks on a 32x32 plane give each pair 1025 mask rows, so
# the 100-pair fleet's wave compute dwarfs the serial program overhead
# (dispatch + host infeed/outfeed on chip 0) that strong scaling cannot
# shard.  Plane stays a power of two: the host rFFT path prices (and
# runs) those sizes fastest.
SCALING_SHAPE = (32, 32)
SCALING_BLOCK = (1, 1)
SCALING_PAIRS = 100  # the strong-scaling fleet
SCALING_CHIPS = (1, 2, 4, 8)
WEAK_PAIRS_PER_CHIP = 25
IDENTITY_PAIRS = 20  # fleet size for the precision/chip-count identity matrix
STRONG_FLOOR_4_CHIPS = 2.5  # strong-scaling acceptance bars (full mode)
STRONG_FLOOR_8_CHIPS = 5.0
CHUNK_FLOOR_4_CHIPS = 2.2  # overlapped root solve must clear this
# The pre-sharded-host-link committed curve (chip-0 fabric scatter,
# serial per-chip launches).  The CI smoke asserts the async host-link
# model strictly improves both.
COMMITTED_STRONG_8_CHIPS = 3.44
COMMITTED_CHUNK_4_CHIPS = 1.78


def small_backend(num_cores=8):
    return TpuBackend(
        make_tpu_chip(num_cores=num_cores, precision="fp32", mxu_rows=8, mxu_cols=8)
    )


def planted_pairs(count, shape=SHAPE, seed=0):
    return planted_interpretation_pairs(count, shape=shape, seed=seed)


def _run(fusion, pairs, device=None, **kwargs):
    pipeline = ExplanationPipeline(
        device or small_backend(), granularity="blocks", block_shape=BLOCK,
        eps=1e-8, fusion=fusion, **kwargs,
    )
    return pipeline.run(pairs)


# ----------------------------------------------------------------------
# Executed-pipeline contracts
# ----------------------------------------------------------------------


def test_wave_dispatch_count_below_pair_dispatch_count():
    """The acceptance contract: a fused fleet costs one dispatch per
    wave where per-pair execution costs one program (plus one residual
    round trip) per pair."""
    pairs = planted_pairs(10)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    assert wave.stats.op_counts["dispatch"] == 1
    assert pair.stats.op_counts["dispatch"] == 10
    assert wave.stats.op_counts["dispatch"] < pair.stats.op_counts["dispatch"]
    assert "conv_round_trip" not in wave.stats.op_counts
    assert wave.simulated_seconds < pair.simulated_seconds


def test_scores_bit_identical_across_fusion():
    pairs = planted_pairs(6, seed=1)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    for a, b in zip(pair.explanations, wave.explanations):
        np.testing.assert_array_equal(a.scores, b.scores)
        np.testing.assert_array_equal(a.kernel, b.kernel)
        assert a.residual == b.residual


@pytest.mark.parametrize(
    "device_factory",
    [CpuDevice, GpuDevice, small_backend],
    ids=["cpu", "gpu", "tpu"],
)
def test_wave_cost_model_matches_executed_pipeline(device_factory):
    """fleet_interpretation_seconds(fusion="wave") mirrors the executed
    wave pipeline the way interpretation_seconds mirrors pair mode."""
    pairs = planted_pairs(3, seed=2)
    executed = _run("wave", pairs, device=device_factory()).simulated_seconds
    workload = InterpretationWorkload(
        name="mini", plane=SHAPE, num_features=16, pairs=3
    )
    modeled = fleet_interpretation_seconds(
        device_factory(), workload, fusion="wave"
    )
    assert modeled == pytest.approx(executed, rel=0.05)


def test_loop_mode_numbers_unchanged_by_fleet_refactor():
    """Table II regenerates from the same per-pair loop arithmetic."""
    workload = vgg19_interpretation_workload()
    for device_factory in (CpuDevice, GpuDevice, lambda: TpuBackend(make_tpu_chip())):
        assert fleet_interpretation_seconds(
            device_factory(), workload, method="loop"
        ) == interpretation_seconds(device_factory(), workload, method="loop")


def test_tpu_wave_gain_grows_with_fleet_size():
    def gain(n):
        device = TpuBackend(make_tpu_chip())
        workload = vgg19_interpretation_workload(pairs=n)
        pair = fleet_interpretation_seconds(device, workload, fusion="pair")
        wave = fleet_interpretation_seconds(device, workload, fusion="wave")
        return pair / wave

    gains = [gain(n) for n in FLEET_SIZES]
    assert gains == sorted(gains)
    assert gains[-1] > gains[0]


def test_pipelined_waves_beat_serial_waves():
    """The PR-3 acceptance contract at executed scale: a multi-wave
    fleet runs strictly faster double-buffered, with unchanged dispatch
    counts and bit-identical per-pair results."""
    pairs = planted_pairs(100)
    serial = _run("wave", pairs, pipelined=False, max_pairs_per_wave=PAIRS_PER_WAVE)
    pipelined = _run("wave", pairs, pipelined=True, max_pairs_per_wave=PAIRS_PER_WAVE)
    assert pipelined.simulated_seconds < serial.simulated_seconds
    assert (
        pipelined.stats.op_counts["dispatch"]
        == serial.stats.op_counts["dispatch"]
        == 100 // PAIRS_PER_WAVE
    )
    # Identical compute records: the credit row is the only ledger delta.
    serial_ops = dict(serial.stats.op_counts)
    pipelined_ops = dict(pipelined.stats.op_counts)
    assert pipelined_ops.pop("infeed_overlap") == 1
    assert pipelined_ops == serial_ops
    for a, b in zip(serial.explanations, pipelined.explanations):
        np.testing.assert_array_equal(a.scores, b.scores)
        assert a.residual == b.residual


def test_pipelined_cost_model_never_above_serial():
    """The modeled overlap mirrors the executed credit: pipelined
    elapsed <= serial on every backend, equal for a single wave,
    strictly below once waves alternate infeed and compute."""
    workload = vgg19_interpretation_workload(pairs=100)
    for factory in (CpuDevice, GpuDevice, lambda: TpuBackend(make_tpu_chip())):
        serial = fleet_interpretation_seconds(
            factory(), workload, fusion="wave", pairs_per_wave=PAIRS_PER_WAVE,
        )
        pipelined = fleet_interpretation_seconds(
            factory(), workload, fusion="wave", pairs_per_wave=PAIRS_PER_WAVE,
            pipelined=True,
        )
        assert pipelined <= serial
        one_wave_serial = fleet_interpretation_seconds(factory(), workload, fusion="wave")
        one_wave_pipelined = fleet_interpretation_seconds(
            factory(), workload, fusion="wave", pipelined=True
        )
        assert one_wave_pipelined == one_wave_serial
    tpu = lambda: TpuBackend(make_tpu_chip())  # noqa: E731
    assert fleet_interpretation_seconds(
        tpu(), workload, fusion="wave", pairs_per_wave=PAIRS_PER_WAVE, pipelined=True
    ) < fleet_interpretation_seconds(
        tpu(), workload, fusion="wave", pairs_per_wave=PAIRS_PER_WAVE
    )


class TestQuantizedFleetContracts:
    """The precision-axis acceptance contracts at executed fleet scale."""

    def test_quantized_wave_matches_quantized_loop_bit_for_bit(self):
        pairs = planted_pairs(6, seed=5)
        for precision in ("int8", "bf16"):
            wave = _run("wave", pairs, precision=precision)
            loop = _run("wave", pairs, method="loop", precision=precision)
            for a, b in zip(wave.explanations, loop.explanations):
                np.testing.assert_array_equal(a.scores, b.scores)
                assert a.residual == b.residual

    def test_quantized_dispatch_structure_matches_fp64(self):
        pairs = planted_pairs(10, seed=6)
        fp64 = _run("wave", pairs, precision="fp64")
        int8 = _run("wave", pairs, precision="int8")
        assert int8.stats.op_counts == fp64.stats.op_counts
        assert int8.simulated_seconds < fp64.simulated_seconds

    def test_quantized_cost_model_ordering_matches_executed(self):
        """Model and execution agree on the precision ladder's direction
        at every fleet size."""
        for pairs_count in (1, 10):
            workload = vgg19_interpretation_workload(pairs=pairs_count)
            modeled = {
                name: fleet_interpretation_seconds(
                    TpuBackend(make_tpu_chip()), workload, fusion="wave",
                    precision=name,
                )
                for name in PRECISIONS
            }
            assert modeled["int8"] < modeled["bf16"] < modeled["fp64"]


def _max_score_error(run, reference):
    """Executed error metric: max |score - reference score| over a fleet."""
    return max(
        float(np.max(np.abs(a.scores - b.scores)))
        for a, b in zip(run.explanations, reference.explanations)
    )


def _quantized_error(pairs, precision):
    """Max executed score error of a quantized wave fleet vs exact."""
    exact = _run("wave", pairs)
    quantized = _run("wave", pairs, precision=precision)
    return _max_score_error(quantized, exact), quantized, exact


# ----------------------------------------------------------------------
# Pod scaling mode (--scaling)
# ----------------------------------------------------------------------


def _scaling_run(pairs, num_chips, placement="data", precision=None, **kwargs):
    """Run the scaling fleet on K chips; returns (run, pod-or-None)."""
    pipeline = ExplanationPipeline(
        TpuBackend(make_tpu_chip()),
        granularity="blocks",
        block_shape=SCALING_BLOCK,
        eps=1e-8,
        precision=precision,
        num_chips=num_chips if num_chips > 1 else None,
        placement=placement,
        **kwargs,
    )
    run = pipeline.run(pairs)
    pod = pipeline.device if isinstance(pipeline.device, TpuPod) else None
    return run, pod


def _runs_identical(reference, run):
    return all(
        np.array_equal(a.scores, b.scores) and a.residual == b.residual
        for a, b in zip(reference.explanations, run.explanations)
    )


def _wave_records(pod):
    """Itemize the pod's collective log: one record per committed wave.

    The per-chip host-link columns (``infeed_seconds`` /
    ``outfeed_seconds``) and the launch-exposure split are the sharded
    infeed's audit trail: each chip's feed time over its own link, and
    how much of the per-chip launch latency the asynchronous enqueue
    actually hid behind the wave body.
    """
    return [
        {
            "wave_index": w.wave_index,
            "placement": w.placement,
            "num_pairs": w.num_pairs,
            "num_rows": w.num_rows,
            "active_chips": w.active_chips,
            "chip_index": w.chip_index,
            "chip_seconds": list(w.chip_seconds),
            "infeed_seconds": list(w.infeed_seconds),
            "outfeed_seconds": list(w.outfeed_seconds),
            "dispatch_seconds": w.dispatch_seconds,
            "launched_chips": w.launched_chips,
            "launch_exposed_seconds": w.launch_exposed_seconds,
            "launch_hidden_seconds": w.launch_hidden_seconds,
            "solve_seconds": w.solve_seconds,
            "gated_body_seconds": w.gated_body_seconds,
            "scatter_seconds": w.scatter_seconds,
            "scatter_bytes": w.scatter_bytes,
            "broadcast_seconds": w.broadcast_seconds,
            "broadcast_bytes": w.broadcast_bytes,
            "gather_seconds": w.gather_seconds,
            "gather_bytes": w.gather_bytes,
        }
        for w in pod.collective_log
    ]


def _scaling_entry(run, pod, baseline_seconds=None):
    entry = {
        "simulated_seconds": run.simulated_seconds,
        "num_waves": run.num_programs,
    }
    if pod is not None:
        waves = _wave_records(pod)
        entry["waves"] = waves
        entry["collective_seconds"] = sum(
            w["scatter_seconds"] + w["broadcast_seconds"] + w["gather_seconds"]
            for w in waves
        )
        entry["max_chip_infeed_seconds"] = max(
            (max(w["infeed_seconds"], default=0.0) for w in waves),
            default=0.0,
        )
        entry["launch_exposed_seconds"] = sum(
            w["launch_exposed_seconds"] for w in waves
        )
        entry["launch_hidden_seconds"] = sum(
            w["launch_hidden_seconds"] for w in waves
        )
    if baseline_seconds is not None:
        entry["speedup_vs_1chip"] = baseline_seconds / run.simulated_seconds
    return entry


def _committed_speedups(path="BENCH_fleet_scaling.json"):
    """Strong/chunk speedups from the committed artifact, if present."""
    try:
        with open(path) as handle:
            committed = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None, None
    strong = {
        k: entry["speedup_vs_1chip"]
        for k, entry in committed.get("strong", {}).get("runs", {}).items()
        if "speedup_vs_1chip" in entry
    }
    chunk = (committed.get("chunk_placement_4_chips") or {}).get(
        "speedup_vs_1chip"
    )
    return strong, chunk


def _scaling_mode(quick=False, json_path=None, timeline=False) -> int:
    """Strong/weak pod-scaling curves plus the bit-identity matrix.

    Exits non-zero unless every pod run's scores equal the single-chip
    run bit for bit (at every chip count, placement and, in full mode,
    every precision) and the speedups clear their bars.  Full mode:
    4-chip >= 2.5x, 8-chip >= 5.0x, overlapped chunk K=4 >= 2.2x, and
    no chip count may regress below the committed artifact.  Quick (CI
    smoke): the same 100-pair fleet at 1/8 chips plus the chunk row,
    both strictly above the pre-sharded-host-link committed baselines.
    """
    chip_counts = (1, 8) if quick else SCALING_CHIPS
    strong_fleet = SCALING_PAIRS
    placement = "data"
    failures = []
    committed_strong, committed_chunk = _committed_speedups()

    # Strong scaling: fixed fleet, growing chip count.
    pairs = planted_pairs(strong_fleet, shape=SCALING_SHAPE, seed=0)
    print(
        f"POD STRONG SCALING ({strong_fleet} pairs, {SCALING_SHAPE[0]}x"
        f"{SCALING_SHAPE[1]} planes, per-element masks, {placement} placement)"
    )
    strong = {}
    reference = None
    last_pod = None
    for k in chip_counts:
        run, pod = _scaling_run(pairs, k)
        if reference is None:
            reference = run
        entry = _scaling_entry(run, pod, reference.simulated_seconds)
        entry["bit_identical_to_1chip"] = _runs_identical(reference, run)
        if not entry["bit_identical_to_1chip"]:
            failures.append(f"strong scaling K={k}: scores diverge from 1 chip")
        strong[str(k)] = entry
        if pod is not None:
            last_pod = pod
        collective = entry.get("collective_seconds", 0.0)
        print(
            f"  chips={k}: seconds={run.simulated_seconds:.4f} "
            f"speedup={entry['speedup_vs_1chip']:.2f}x "
            f"max_chip_infeed={entry.get('max_chip_infeed_seconds', 0.0):.6f}s "
            f"launch_exposed={entry.get('launch_exposed_seconds', 0.0):.6f}s "
            f"collectives={collective:.6f}s "
            f"identical={entry['bit_identical_to_1chip']}"
        )
    if timeline and last_pod is not None:
        # The per-wave ASCII decomposition of the last (widest) strong
        # run: one =infeed/#compute/-outfeed bar per busy chip.
        from repro.obs.export import format_wave_timeline

        print(format_wave_timeline(last_pod.collective_log))
    if quick:
        strong_speedup = strong["8"]["speedup_vs_1chip"]
        if strong_speedup <= COMMITTED_STRONG_8_CHIPS:
            failures.append(
                f"strong scaling: 8-chip speedup {strong_speedup:.2f}x does "
                f"not improve the committed {COMMITTED_STRONG_8_CHIPS}x"
            )
    else:
        for k, floor in ((4, STRONG_FLOOR_4_CHIPS), (8, STRONG_FLOOR_8_CHIPS)):
            speedup = strong[str(k)]["speedup_vs_1chip"]
            if speedup < floor:
                failures.append(
                    f"strong scaling: {k}-chip speedup {speedup:.2f}x "
                    f"below the {floor}x floor"
                )
        strong_speedup = strong["4"]["speedup_vs_1chip"]
        if committed_strong:
            # Regression gate: the refreshed artifact must not fall
            # below the committed curve at any chip count it shares.
            for k, committed in sorted(committed_strong.items()):
                measured = strong.get(k, {}).get("speedup_vs_1chip")
                if measured is not None and measured < committed - 1e-9:
                    failures.append(
                        f"strong scaling regression: {k}-chip speedup "
                        f"{measured:.2f}x below committed {committed:.2f}x"
                    )

    # Chunk placement: same fleet, rows sharded instead of pairs, the
    # root's kernel solve overlapped against peer mask-row streaming.
    run, pod = _scaling_run(pairs, 4, placement="chunk")
    chunk = _scaling_entry(run, pod, reference.simulated_seconds)
    chunk["bit_identical_to_1chip"] = _runs_identical(reference, run)
    if not chunk["bit_identical_to_1chip"]:
        failures.append("chunk placement K=4: scores diverge from 1 chip")
    chunk_speedup = chunk["speedup_vs_1chip"]
    print(
        f"  chips=4 (chunk placement): seconds={run.simulated_seconds:.4f} "
        f"speedup={chunk_speedup:.2f}x "
        f"solve={sum(w['solve_seconds'] for w in chunk['waves']):.4f}s "
        f"collectives={chunk['collective_seconds']:.6f}s "
        f"identical={chunk['bit_identical_to_1chip']}"
    )
    if timeline and pod is not None:
        from repro.obs.export import format_wave_timeline

        print(format_wave_timeline(pod.collective_log))
    if quick:
        if chunk_speedup <= COMMITTED_CHUNK_4_CHIPS:
            failures.append(
                f"chunk placement: K=4 speedup {chunk_speedup:.2f}x does "
                f"not improve the committed {COMMITTED_CHUNK_4_CHIPS}x"
            )
    else:
        if chunk_speedup < CHUNK_FLOOR_4_CHIPS:
            failures.append(
                f"chunk placement: K=4 speedup {chunk_speedup:.2f}x below "
                f"the {CHUNK_FLOOR_4_CHIPS}x floor"
            )
        if committed_chunk is not None and chunk_speedup < committed_chunk - 1e-9:
            failures.append(
                f"chunk placement regression: K=4 speedup {chunk_speedup:.2f}x "
                f"below committed {committed_chunk:.2f}x"
            )

    # Wave placement: whole waves round-robined across chips.
    wave_entry = None
    if not quick:
        run, pod = _scaling_run(pairs, 4, placement="wave", max_pairs_per_wave=25)
        wave_entry = _scaling_entry(run, pod, reference.simulated_seconds)
        wave_entry["bit_identical_to_1chip"] = _runs_identical(reference, run)
        if not wave_entry["bit_identical_to_1chip"]:
            failures.append("wave placement K=4: scores diverge from 1 chip")
        print(
            f"  chips=4 (wave placement, 25-pair waves): "
            f"seconds={run.simulated_seconds:.4f} "
            f"speedup={wave_entry['speedup_vs_1chip']:.2f}x "
            f"identical={wave_entry['bit_identical_to_1chip']}"
        )

    # Weak scaling: fleet grows with the chip count.
    weak = None
    if not quick:
        print(f"POD WEAK SCALING ({WEAK_PAIRS_PER_CHIP} pairs per chip)")
        weak = {"pairs_per_chip": WEAK_PAIRS_PER_CHIP, "runs": {}}
        weak_baseline = None
        for k in SCALING_CHIPS:
            weak_pairs = planted_pairs(
                WEAK_PAIRS_PER_CHIP * k, shape=SCALING_SHAPE, seed=1
            )
            run, pod = _scaling_run(weak_pairs, k)
            if weak_baseline is None:
                weak_baseline = run.simulated_seconds
            entry = _scaling_entry(run, pod)
            entry["pairs"] = len(weak_pairs)
            entry["efficiency"] = weak_baseline / run.simulated_seconds
            weak["runs"][str(k)] = entry
            print(
                f"  chips={k}: pairs={len(weak_pairs)} "
                f"seconds={run.simulated_seconds:.4f} "
                f"efficiency={entry['efficiency']:.2f}"
            )

    # Bit-identity matrix across the precision ladder and every
    # placement axis (sharded-data, overlapped-chunk, wave).
    precisions = ("int8",) if quick else PRECISIONS
    identity_chips = [k for k in chip_counts if k > 1]
    identity_placements = ("data",) if quick else ("data", "chunk", "wave")
    identity = {
        "pairs": IDENTITY_PAIRS,
        "precisions": list(precisions),
        "chip_counts": identity_chips,
        "placements": list(identity_placements),
        "all_identical": True,
    }
    identity_pairs = planted_pairs(IDENTITY_PAIRS, shape=SCALING_SHAPE, seed=2)
    print(
        f"POD BIT-IDENTITY MATRIX ({IDENTITY_PAIRS} pairs; "
        f"precisions {'/'.join(precisions)} x chips "
        f"{'/'.join(str(k) for k in identity_chips)} x placements "
        f"{'/'.join(identity_placements)})"
    )
    for precision in precisions:
        single, _ = _scaling_run(identity_pairs, 1, precision=precision)
        for k in identity_chips:
            for identity_placement in identity_placements:
                sharded, _ = _scaling_run(
                    identity_pairs, k,
                    placement=identity_placement, precision=precision,
                )
                identical = _runs_identical(single, sharded)
                print(
                    f"  {precision} chips={k} {identity_placement}: "
                    f"identical={identical}"
                )
                if not identical:
                    identity["all_identical"] = False
                    failures.append(
                        f"identity: {precision} at {k} chips "
                        f"({identity_placement}) diverges from 1 chip"
                    )

    interconnect = last_pod.interconnect.config if last_pod else None
    payload = {
        "benchmark": "bench_fleet_scaling",
        "mode": "quick" if quick else "full",
        "clock": "simulated",
        "plane_shape": list(SCALING_SHAPE),
        "block_shape": list(SCALING_BLOCK),
        "rows_per_pair": SCALING_SHAPE[0] * SCALING_SHAPE[1] + 1,
        "placement": placement,
        "interconnect": {
            "topology": interconnect.topology,
            "link_bandwidth_bytes_per_sec": (
                interconnect.link_bandwidth_bytes_per_sec
            ),
            "link_latency_sec": interconnect.link_latency_sec,
        }
        if interconnect
        else None,
        "strong": {"pairs": strong_fleet, "runs": strong},
        "chunk_placement_4_chips": chunk,
        "wave_placement_4_chips": wave_entry,
        "weak": weak,
        "identity": identity,
        "contracts": {
            "strong_speedup_floor_4_chips": STRONG_FLOOR_4_CHIPS,
            "strong_speedup_floor_8_chips": STRONG_FLOOR_8_CHIPS,
            "chunk_speedup_floor_4_chips": CHUNK_FLOOR_4_CHIPS,
            "strong_speedup_measured_4_chips": strong.get("4", {}).get(
                "speedup_vs_1chip"
            ),
            "strong_speedup_measured_8_chips": strong.get("8", {}).get(
                "speedup_vs_1chip"
            ),
            "chunk_speedup_measured_4_chips": chunk_speedup,
            "committed_baseline_strong_8_chips": COMMITTED_STRONG_8_CHIPS,
            "committed_baseline_chunk_4_chips": COMMITTED_CHUNK_4_CHIPS,
            "bit_identity": "pod scores == single-chip scores at every "
            "chip count, placement and precision",
            "bit_identity_holds": identity["all_identical"]
            and not any("diverge" in f for f in failures),
        },
    }
    if json_path is None:
        json_path = (
            "BENCH_fleet_scaling_quick.json"
            if quick
            else "BENCH_fleet_scaling.json"
        )
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


def test_pod_strong_scaling_direction_and_identity():
    """A 4-chip pod must beat one chip on a fleet whose wave compute
    exceeds the unshardable program overhead, without moving a bit."""
    pairs = planted_pairs(10, shape=SCALING_SHAPE, seed=0)
    single, no_pod = _scaling_run(pairs, 1)
    sharded, pod = _scaling_run(pairs, 4)
    assert no_pod is None and pod is not None
    assert sharded.simulated_seconds < single.simulated_seconds
    assert len(pod.collective_log) == 1
    wave = pod.collective_log[0]
    # Sharded host links: every active chip fed its own slice over its
    # own link (no fabric scatter/gather), and the asynchronous enqueue
    # hid some launch latency behind the wave body.
    assert wave.launched_chips == 4
    assert all(seconds > 0.0 for seconds in wave.infeed_seconds)
    assert wave.scatter_seconds == 0.0 and wave.gather_seconds == 0.0
    assert wave.launch_hidden_seconds > 0.0
    assert _runs_identical(single, sharded)


def test_pod_chunk_placement_matches_data_placement():
    pairs = planted_pairs(6, shape=SCALING_SHAPE, seed=4)
    data_run, _ = _scaling_run(pairs, 4, placement="data")
    chunk_run, chunk_pod = _scaling_run(pairs, 4, placement="chunk")
    assert _runs_identical(data_run, chunk_run)
    assert chunk_pod.collective_log[0].broadcast_seconds > 0.0


# ----------------------------------------------------------------------
# Report + CLI smoke mode
# ----------------------------------------------------------------------


def _report(fleet_sizes=FLEET_SIZES) -> str:
    lines = [
        "FLEET-SCALE INTERPRETATION (simulated seconds per fleet)",
        f"(wave/wave-pip split into {PAIRS_PER_WAVE}-pair waves; "
        "overlap = host-link time hidden by double-buffered infeed)",
        f"{'workload':10s} {'pairs':>5s} {'device':6s} "
        f"{'loop':>12s} {'pair':>12s} {'wave':>12s} {'wave-pip':>12s} "
        f"{'overlap':>10s} {'gain':>7s}",
    ]
    for make_workload in (vgg19_interpretation_workload, resnet50_interpretation_workload):
        for pairs in fleet_sizes:
            workload = make_workload(pairs=pairs)
            for name, factory in [
                ("CPU", CpuDevice),
                ("GPU", GpuDevice),
                ("TPU", lambda: TpuBackend(make_tpu_chip())),
            ]:
                loop = fleet_interpretation_seconds(
                    factory(), workload, method="loop"
                )
                pair = fleet_interpretation_seconds(factory(), workload, fusion="pair")
                wave = fleet_interpretation_seconds(
                    factory(), workload, fusion="wave",
                    pairs_per_wave=PAIRS_PER_WAVE,
                )
                pipelined = fleet_interpretation_seconds(
                    factory(), workload, fusion="wave",
                    pairs_per_wave=PAIRS_PER_WAVE, pipelined=True,
                )
                lines.append(
                    f"{workload.name:10s} {pairs:5d} {name:6s} "
                    f"{loop:12.4f} {pair:12.4f} {wave:12.4f} {pipelined:12.4f} "
                    f"{wave - pipelined:10.4f} {pair / pipelined:6.2f}x"
                )
    return "\n".join(lines)


def _precision_report(fleet_sizes=FLEET_SIZES) -> str:
    """The quantized-batch ablation table.

    Modeled columns use the full-size TPU at workload scale per
    precision; the error columns come from an *executed* small-plane
    fleet (batched vs loop quantization error -- equal by construction,
    both reported so the equality is visible).
    """
    lines = [
        "QUANTIZED BATCHED INTERPRETATION (wave-pipelined, simulated seconds)",
        "(speedup = fp64 wave seconds / this precision's wave seconds;",
        " err columns: executed 16x16 fleet, max |score - fp64 score| --",
        " shared by both workloads, since error depends on the plane data,",
        " not the modeled workload; fp64 is exact by construction)",
        f"{'workload':10s} {'pairs':>5s} {'precision':>9s} "
        f"{'wave-pip':>12s} {'speedup':>8s} {'batched-err':>12s} {'loop-err':>12s}",
    ]
    # Executed quantization error depends only on the planted planes
    # (keyed by fleet size), not on the modeled workload: compute each
    # error fleet once and reuse it for every workload row.  Exact
    # precisions skip execution -- their error is zero by construction.
    errors: dict[tuple[int, str], tuple[float, float]] = {}
    for pairs_count in fleet_sizes:
        executed_pairs = planted_pairs(min(pairs_count, 10), seed=pairs_count)
        exact = _run("wave", executed_pairs)
        for name in PRECISIONS:
            if name in ("fp64", "fp32"):
                errors[pairs_count, name] = (0.0, 0.0)
                continue
            quantized = _run("wave", executed_pairs, precision=name)
            looped = _run("wave", executed_pairs, method="loop", precision=name)
            errors[pairs_count, name] = (
                _max_score_error(quantized, exact),
                _max_score_error(looped, exact),
            )
    for make_workload in (vgg19_interpretation_workload, resnet50_interpretation_workload):
        for pairs_count in fleet_sizes:
            workload = make_workload(pairs=pairs_count)
            modeled = {
                name: fleet_interpretation_seconds(
                    TpuBackend(make_tpu_chip()), workload, fusion="wave",
                    pairs_per_wave=min(PAIRS_PER_WAVE, pairs_count),
                    pipelined=True, precision=name,
                )
                for name in PRECISIONS
            }
            for name in PRECISIONS:
                batched_err, loop_err = errors[pairs_count, name]
                lines.append(
                    f"{workload.name:10s} {pairs_count:5d} {name:>9s} "
                    f"{modeled[name]:12.4f} "
                    f"{modeled['fp64'] / modeled[name]:7.2f}x "
                    f"{batched_err:12.3e} {loop_err:12.3e}"
                )
    return "\n".join(lines)


def _quantized_smoke() -> int:
    """The quantized-batch ablation contract (part of ``--quick``).

    Executes a 10-pair fleet at int8 against the exact (unquantized
    legacy-priced) run and exits non-zero unless int8 batched scores
    equal int8 looped scores bit for bit, the int8 batched error stays
    within the documented ``quantized_conv_error_bound``, and the
    dispatch/op structure matches the exact run exactly.  (Modeled
    int8-vs-fp64 speedups live in the precision report, which prices
    both ends with the MXU cycle model.)
    """
    from repro.hw.quantize import quantized_score_error_bound

    pairs = planted_pairs(10, seed=3)
    error, int8, exact = _quantized_error(pairs, "int8")
    loop = _run("wave", pairs, method="loop", precision="int8")
    # The bound is per pair: each pair's error must respect *its own*
    # documented bound (a fleet-wide max-vs-max comparison could mask a
    # single pair's violation behind another pair's looser bound).
    violations = []
    for index, ((x, _), a, b) in enumerate(
        zip(pairs, int8.explanations, exact.explanations)
    ):
        pair_error = float(np.max(np.abs(a.scores - b.scores)))
        pair_bound = quantized_score_error_bound(x, b.kernel, bits=8)
        if pair_error > pair_bound:
            violations.append((index, pair_error, pair_bound))
    print(
        f"executed 10-pair quantized fleet: int8 batched err={error:.3e} "
        f"(per-pair documented bounds all hold: {not violations}), dispatches "
        f"int8={int8.stats.op_counts['dispatch']} "
        f"exact={exact.stats.op_counts['dispatch']}, seconds "
        f"int8={int8.simulated_seconds:.4f} exact={exact.simulated_seconds:.4f}"
    )
    for a, b in zip(int8.explanations, loop.explanations):
        if not np.array_equal(a.scores, b.scores):
            print(
                "FAIL: int8 batched scores must equal int8 looped scores "
                "bit for bit",
                file=sys.stderr,
            )
            return 1
    if violations:
        for index, err, pair_bound in violations:
            print(
                f"FAIL: pair {index} int8 batched error {err:.3e} exceeds "
                f"its documented bound {pair_bound:.3e}",
                file=sys.stderr,
            )
        return 1
    if int8.stats.op_counts != exact.stats.op_counts:
        print(
            "FAIL: quantization must not change the dispatch/op structure",
            file=sys.stderr,
        )
        return 1
    return 0


def _pipelined_smoke() -> int:
    """Executed overlap contract at 100 pairs (the CI pipelined smoke).

    Runs the same 100-pair fleet serially and double-buffered
    (10-pair waves both times) and exits non-zero unless pipelined
    elapsed is strictly below serial, the wave dispatch count is
    unchanged by pipelining, and per-pair results are bit-identical.
    """
    pairs = planted_pairs(100)
    serial = _run("wave", pairs, pipelined=False, max_pairs_per_wave=PAIRS_PER_WAVE)
    pipelined = _run("wave", pairs, pipelined=True, max_pairs_per_wave=PAIRS_PER_WAVE)
    overlap = -pipelined.stats.op_seconds.get("infeed_overlap", 0.0)
    print(
        f"executed 100-pair fleet in {PAIRS_PER_WAVE}-pair waves: "
        f"dispatches serial={serial.stats.op_counts['dispatch']} "
        f"pipelined={pipelined.stats.op_counts['dispatch']}, "
        f"seconds serial={serial.simulated_seconds:.4f} "
        f"pipelined={pipelined.simulated_seconds:.4f} "
        f"(overlap hidden: {overlap:.4f}s)"
    )
    if pipelined.simulated_seconds >= serial.simulated_seconds:
        print(
            "FAIL: pipelined elapsed must be strictly below serial at 100 pairs",
            file=sys.stderr,
        )
        return 1
    if pipelined.stats.op_counts["dispatch"] != serial.stats.op_counts["dispatch"]:
        print(
            "FAIL: pipelining must not change the wave dispatch count",
            file=sys.stderr,
        )
        return 1
    for a, b in zip(serial.explanations, pipelined.explanations):
        if not np.array_equal(a.scores, b.scores):
            print(
                "FAIL: pipelined scores diverge from serial scores", file=sys.stderr
            )
            return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: small fleet, executed-dispatch assertion only",
    )
    parser.add_argument(
        "--pipelined",
        action="store_true",
        help="also run the executed 100-pair pipelined-vs-serial contract "
        "(pipelined elapsed < serial, unchanged dispatch count)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="pod-scaling mode: strong/weak curves across 1/2/4/8 chips "
        "with interconnect-priced collectives, bit-identity matrix, JSON "
        "artifact (combine with --quick for the CI direction-only smoke)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="output path for the --scaling JSON artifact "
        "(default: BENCH_fleet_scaling.json, or the _quick variant)",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="with --scaling: print the per-wave ASCII timeline "
        "(infeed/compute/outfeed bars per chip, collectives footer)",
    )
    args = parser.parse_args(argv)

    if args.scaling:
        return _scaling_mode(
            quick=args.quick, json_path=args.json, timeline=args.timeline
        )

    fleet = 10 if args.quick else 100
    pairs = planted_pairs(fleet)
    wave = _run("wave", pairs)
    pair = _run("pair", pairs)
    wave_dispatches = wave.stats.op_counts["dispatch"]
    pair_dispatches = pair.stats.op_counts["dispatch"]
    print(
        f"executed {fleet}-pair fleet on {small_backend().name}: "
        f"dispatches pair={pair_dispatches} wave={wave_dispatches}, "
        f"seconds pair={pair.simulated_seconds:.4f} "
        f"wave={wave.simulated_seconds:.4f} "
        f"({pair.simulated_seconds / wave.simulated_seconds:.1f}x)"
    )
    if wave_dispatches >= pair_dispatches:
        print(
            "FAIL: wave-fused dispatch count must be below per-pair count",
            file=sys.stderr,
        )
        return 1
    for a, b in zip(pair.explanations, wave.explanations):
        if not np.array_equal(a.scores, b.scores):
            print("FAIL: wave scores diverge from per-pair scores", file=sys.stderr)
            return 1
    status = _quantized_smoke()
    if status:
        return status
    if args.pipelined:
        status = _pipelined_smoke()
        if status:
            return status
    print()
    print(_report(fleet_sizes=(1, 10) if args.quick else FLEET_SIZES))
    print()
    print(_precision_report(fleet_sizes=(1, 10) if args.quick else FLEET_SIZES))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
