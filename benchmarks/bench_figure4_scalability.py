"""Figure 4: scalability of the interpretation solve with matrix size.

Regenerates the paper's Figure 4: time of one distillation solve at
matrix sizes 64..1024 on CPU / GPU / TPU.  Shape contract:

* every device's time grows with matrix size;
* the TPU's advantage *grows* with size (the scalability claim);
* at 1024x1024 the TPU is >30x faster than the CPU baseline (paper:
  "more than 30x");
* at small sizes the TPU is overhead-bound and the gap closes or
  inverts -- the crossover the decomposition argument predicts.
"""

import numpy as np
import pytest

from repro.bench.harness import format_figure4, run_figure4
from repro.bench.workloads import FIGURE4_SIZES
from repro.core.decomposition import DecomposedFourier
from repro.core import make_tpu_chip
from repro.fft import fft2


@pytest.fixture(scope="module")
def figure4():
    return run_figure4()


def test_print_figure4(figure4, capsys):
    with capsys.disabled():
        print()
        print(format_figure4(figure4))


def test_times_grow_with_size(figure4):
    for series in ("cpu_seconds", "gpu_seconds", "tpu_seconds"):
        values = [getattr(point, series) for point in figure4.points]
        assert values == sorted(values), f"{series} not monotone"


def test_tpu_advantage_grows_with_size(figure4):
    ratios = [p.cpu_seconds / p.tpu_seconds for p in figure4.points]
    assert ratios == sorted(ratios)


def test_paper_claim_at_1024(figure4):
    assert figure4.speedup_vs_cpu(1024) > 30.0


def test_small_sizes_are_overhead_bound(figure4):
    """At 64x64 the dispatch/transfer overhead dominates and the TPU
    should NOT win -- the honest flip side of the scalability story."""
    first = figure4.points[0]
    assert first.size == 64
    assert first.tpu_seconds > first.cpu_seconds


def test_gpu_between_cpu_and_tpu_at_scale(figure4):
    last = figure4.points[-1]
    assert last.cpu_seconds > last.gpu_seconds > last.tpu_seconds


def test_benchmark_figure4(benchmark):
    result = benchmark(run_figure4)
    assert len(result.points) == len(FIGURE4_SIZES)


class TestDecompositionExecutesFaithfully:
    """Figure 4's timing model is backed by an executable Algorithm 1:
    the sharded transform really runs on the simulated cores and merges
    to the exact transform."""

    def test_sharded_execution_matches_direct(self, benchmark):
        chip = make_tpu_chip(num_cores=8, precision="fp32", mxu_rows=16, mxu_cols=16)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((64, 64))

        def run():
            chip.reset()
            return DecomposedFourier(chip).fft2(x)

        result, report = benchmark(run)
        np.testing.assert_allclose(result, fft2(x), atol=1e-6)
        assert report.elapsed_seconds > 0

    def test_core_sweep_strong_scaling(self):
        """Doubling cores keeps shrinking per-stage compute time."""
        chip = make_tpu_chip(num_cores=16, precision="fp32", mxu_rows=16, mxu_cols=16)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((128, 128))
        compute_times = []
        for cores in (1, 2, 4, 8, 16):
            chip.reset()
            _, report = DecomposedFourier(chip, cores=cores).fft2(x)
            compute_times.append(report.compute_seconds)
        assert compute_times == sorted(compute_times, reverse=True)
