"""Legacy setup shim.

The execution environment has no `wheel` package, so PEP 660 editable
installs (which require `bdist_wheel`) fail.  With this shim present,
``pip install -e . --no-build-isolation`` falls back to the classic
``setup.py develop`` path, which works offline.
"""

from setuptools import setup

setup()
